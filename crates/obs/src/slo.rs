//! Declarative SLOs with multi-window burn-rate computation.
//!
//! An [`SloSpec`] names an objective ("99% of searches under 100 ms"),
//! and an [`SloEngine`] tracks good/bad outcomes against it in one-second
//! circular buckets. Burn rate follows the standard error-budget math:
//! `burn = (observed error rate) / (allowed error rate)`, computed over a
//! short and a long window so a `GET /slo` poll distinguishes a fresh
//! fast burn (both windows hot) from the tail of an old incident (long
//! hot, short cold). A burn rate above 14.4 on both windows — the
//! canonical 2%-of-monthly-budget-in-an-hour page threshold — sets
//! [`SloStatus::fast_burn`].
//!
//! Everything runs on the host wall clock: SLOs are a serving-side
//! contract, unlike the simulated device clock the cost model ticks on.

use std::sync::Mutex;

use crate::metrics::{Counter, Gauge};
use crate::trace::wall_now_us;
use crate::Registry;

/// Burn rate above which both windows burning means "page now": spends
/// 2% of a 30-day error budget per hour.
pub const FAST_BURN_THRESHOLD: f64 = 14.4;

/// What an objective measures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SloKind {
    /// Good = the query was served *and* finished within `threshold_us`
    /// (host wall microseconds).
    Latency {
        /// Latency threshold in wall microseconds.
        threshold_us: f64,
    },
    /// Good = the query was served at all (not failed outright).
    Availability,
}

/// One declarative objective.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Stable name used as the `slo` label on every `texid_slo_*` series.
    pub name: String,
    /// What counts as a good event.
    pub kind: SloKind,
    /// Target good fraction, e.g. `0.99` for a 99% objective.
    pub target: f64,
    /// Short burn window in seconds (fast-burn detection).
    pub short_window_s: u64,
    /// Long burn window in seconds (budget accounting); also the ring
    /// retention, so it bounds memory at one bucket per second.
    pub long_window_s: u64,
}

impl SloSpec {
    /// A latency objective: `target` fraction of queries under
    /// `threshold_us`, with 60 s / 3600 s burn windows.
    pub fn latency(name: &str, threshold_us: f64, target: f64) -> Self {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::Latency { threshold_us },
            target,
            short_window_s: 60,
            long_window_s: 3600,
        }
    }

    /// An availability objective with 60 s / 3600 s burn windows.
    pub fn availability(name: &str, target: f64) -> Self {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::Availability,
            target,
            short_window_s: 60,
            long_window_s: 3600,
        }
    }
}

/// Point-in-time view of one objective, for `/slo` and `/health`.
#[derive(Clone, Debug)]
pub struct SloStatus {
    /// The objective's name.
    pub name: String,
    /// Target good fraction.
    pub target: f64,
    /// Good events inside the long window.
    pub good: u64,
    /// Bad events inside the long window.
    pub bad: u64,
    /// Burn rate over the short window (1.0 = burning exactly at budget).
    pub short_burn: f64,
    /// Burn rate over the long window.
    pub long_burn: f64,
    /// Fraction of the long-window error budget still unspent, clamped
    /// to `[0, 1]`.
    pub budget_remaining: f64,
    /// Both windows above [`FAST_BURN_THRESHOLD`].
    pub fast_burn: bool,
}

/// One-second bucket: `(second, good, bad)`.
type Bucket = (u64, u64, u64);

struct TrackedSlo {
    spec: SloSpec,
    /// Circular buckets indexed by `second % long_window_s`; a bucket is
    /// lazily reset when a new second hashes onto it.
    buckets: Mutex<Vec<Bucket>>,
    good_total: Counter,
    bad_total: Counter,
    short_burn: Gauge,
    long_burn: Gauge,
    budget_remaining: Gauge,
}

/// Tracks a set of objectives and keeps their `texid_slo_*` series fresh.
pub struct SloEngine {
    slos: Vec<TrackedSlo>,
}

impl SloEngine {
    /// Build an engine for `specs`, registering per-SLO series
    /// (`texid_slo_good_total`, `texid_slo_bad_total`,
    /// `texid_slo_burn_rate{window=short|long}`,
    /// `texid_slo_budget_remaining`) in `reg`.
    pub fn register(specs: Vec<SloSpec>, reg: &Registry) -> Self {
        let slos = specs
            .into_iter()
            .map(|spec| {
                assert!(spec.long_window_s > 0, "long window must be positive");
                assert!(
                    spec.target < 1.0 && spec.target > 0.0,
                    "target must be in (0, 1): a target of exactly 1.0 has no error budget"
                );
                let lbl = [("slo", spec.name.as_str())];
                TrackedSlo {
                    buckets: Mutex::new(vec![(u64::MAX, 0, 0); spec.long_window_s as usize]),
                    good_total: reg.counter(
                        "texid_slo_good",
                        "Events that met their SLO, by objective.",
                        &lbl,
                    ),
                    bad_total: reg.counter(
                        "texid_slo_bad",
                        "Events that violated their SLO, by objective.",
                        &lbl,
                    ),
                    short_burn: reg.gauge(
                        "texid_slo_burn_rate",
                        "Error-budget burn rate (1.0 = burning exactly at budget), by objective and window.",
                        &[("slo", spec.name.as_str()), ("window", "short")],
                    ),
                    long_burn: reg.gauge(
                        "texid_slo_burn_rate",
                        "Error-budget burn rate (1.0 = burning exactly at budget), by objective and window.",
                        &[("slo", spec.name.as_str()), ("window", "long")],
                    ),
                    budget_remaining: reg.gauge(
                        "texid_slo_budget_remaining",
                        "Fraction of the long-window error budget unspent, by objective.",
                        &lbl,
                    ),
                    spec,
                }
            })
            .collect();
        SloEngine { slos }
    }

    /// Record one served query against every objective, stamped now.
    pub fn record(&self, latency_us: f64, available: bool) {
        self.record_at(wall_now_us(), latency_us, available);
    }

    /// Record with an explicit wall timestamp (microseconds since the
    /// epoch). Public so tests can drive window arithmetic
    /// deterministically.
    pub fn record_at(&self, now_us: f64, latency_us: f64, available: bool) {
        let sec = (now_us / 1e6) as u64;
        for slo in &self.slos {
            let good = match slo.spec.kind {
                SloKind::Latency { threshold_us } => available && latency_us <= threshold_us,
                SloKind::Availability => available,
            };
            {
                let mut buckets = slo.buckets.lock().unwrap();
                let cap = buckets.len() as u64;
                let b = &mut buckets[(sec % cap) as usize];
                if b.0 != sec {
                    *b = (sec, 0, 0);
                }
                if good {
                    b.1 += 1;
                } else {
                    b.2 += 1;
                }
            }
            if good {
                slo.good_total.inc();
            } else {
                slo.bad_total.inc();
            }
            let (sb, lb, rem, _) = slo.burn_at(sec);
            slo.short_burn.set(sb);
            slo.long_burn.set(lb);
            slo.budget_remaining.set(rem);
        }
    }

    /// Snapshot every objective as of now.
    pub fn status(&self) -> Vec<SloStatus> {
        self.status_at(wall_now_us())
    }

    /// Snapshot with an explicit wall timestamp (for tests).
    pub fn status_at(&self, now_us: f64) -> Vec<SloStatus> {
        let sec = (now_us / 1e6) as u64;
        self.slos
            .iter()
            .map(|slo| {
                let (short_burn, long_burn, budget_remaining, (good, bad)) = slo.burn_at(sec);
                SloStatus {
                    name: slo.spec.name.clone(),
                    target: slo.spec.target,
                    good,
                    bad,
                    short_burn,
                    long_burn,
                    budget_remaining,
                    fast_burn: short_burn > FAST_BURN_THRESHOLD && long_burn > FAST_BURN_THRESHOLD,
                }
            })
            .collect()
    }
}

impl TrackedSlo {
    /// `(short_burn, long_burn, budget_remaining, (long_good, long_bad))`
    /// as of second `sec`.
    fn burn_at(&self, sec: u64) -> (f64, f64, f64, (u64, u64)) {
        let allowed = 1.0 - self.spec.target;
        let buckets = self.buckets.lock().unwrap();
        let window = |span: u64| -> (u64, u64) {
            let oldest = sec.saturating_sub(span.saturating_sub(1));
            buckets
                .iter()
                .filter(|b| b.0 >= oldest && b.0 <= sec)
                .fold((0, 0), |(g, bd), b| (g + b.1, bd + b.2))
        };
        let burn = |(good, bad): (u64, u64)| -> f64 {
            let total = good + bad;
            if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / allowed
            }
        };
        let short = window(self.spec.short_window_s);
        let long = window(self.spec.long_window_s);
        let budget_remaining = (1.0 - burn(long)).clamp(0.0, 1.0);
        (burn(short), burn(long), budget_remaining, long)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(spec: SloSpec) -> SloEngine {
        SloEngine::register(vec![spec], &Registry::new())
    }

    #[test]
    fn latency_objective_classifies_good_and_bad() {
        let e = engine(SloSpec::latency("lat", 100.0, 0.9));
        let t0 = 1_000.0 * 1e6;
        for _ in 0..9 {
            e.record_at(t0, 50.0, true);
        }
        e.record_at(t0, 500.0, true); // served, but slow: bad
        let s = &e.status_at(t0)[0];
        assert_eq!((s.good, s.bad), (9, 1));
        // 10% bad against a 10% budget: burning exactly at budget.
        assert!((s.long_burn - 1.0).abs() < 1e-9, "long_burn {}", s.long_burn);
        assert!((s.budget_remaining - 0.0).abs() < 1e-9);
        assert!(!s.fast_burn);
    }

    #[test]
    fn unavailability_is_bad_for_both_kinds() {
        let e = SloEngine::register(
            vec![SloSpec::latency("lat", 100.0, 0.5), SloSpec::availability("avail", 0.5)],
            &Registry::new(),
        );
        let t0 = 2_000.0 * 1e6;
        e.record_at(t0, 10.0, false); // fast but failed
        for s in e.status_at(t0) {
            assert_eq!((s.good, s.bad), (0, 1), "{}", s.name);
        }
    }

    #[test]
    fn short_window_cools_while_long_window_remembers() {
        let mut spec = SloSpec::availability("avail", 0.99);
        spec.short_window_s = 5;
        spec.long_window_s = 100;
        let e = engine(spec);
        let t0 = 5_000.0 * 1e6;
        // An incident: 10 failures at t0.
        for _ in 0..10 {
            e.record_at(t0, 1.0, false);
        }
        // Then a healthy minute: one success per second for 50 s.
        for i in 1..=50u64 {
            e.record_at(t0 + i as f64 * 1e6, 1.0, true);
        }
        let now = t0 + 50.0 * 1e6;
        let s = &e.status_at(now)[0];
        assert_eq!(s.short_burn, 0.0, "incident left the short window");
        assert!(s.long_burn > FAST_BURN_THRESHOLD, "long window still hot: {}", s.long_burn);
        assert!(!s.fast_burn, "one cold window means no fast-burn page");
        // Immediately after the incident, both windows burn.
        let hot = &e.status_at(t0 + 1e6)[0];
        assert!(hot.short_burn > FAST_BURN_THRESHOLD);
    }

    #[test]
    fn stale_buckets_from_a_previous_lap_are_reset() {
        let mut spec = SloSpec::availability("avail", 0.5);
        spec.short_window_s = 2;
        spec.long_window_s = 4;
        let e = engine(spec);
        let t0 = 10_000.0 * 1e6;
        e.record_at(t0, 1.0, false);
        // One full lap later the same slot must not resurrect old counts.
        e.record_at(t0 + 4.0 * 1e6, 1.0, true);
        let s = &e.status_at(t0 + 4.0 * 1e6)[0];
        assert_eq!((s.good, s.bad), (1, 0), "old lap evicted");
    }

    #[test]
    fn metrics_surface_burn_rates() {
        let reg = Registry::new();
        let e = SloEngine::register(vec![SloSpec::availability("avail", 0.9)], &reg);
        e.record_at(42.0 * 1e6, 1.0, false);
        let text = reg.render_prometheus();
        assert!(text.contains("texid_slo_bad_total{slo=\"avail\"} 1"), "{text}");
        assert!(text.contains("texid_slo_burn_rate{slo=\"avail\",window=\"short\"} 10"), "{text}");
        assert!(text.contains("texid_slo_budget_remaining{slo=\"avail\"} 0"), "{text}");
    }
}
