//! Integral images — the substrate SURF's box filters run on.
//!
//! `ii(x, y) = Σ_{u<x, v<y} I(u, v)` with the usual one-pixel offset
//! convention, so any axis-aligned box sum is four lookups.

use texid_image::GrayImage;

/// Summed-area table over a grayscale image (f64 accumulation: a 512²
/// image of unit pixels already exceeds f32's exact-integer range).
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// `(width + 1) × (height + 1)` table, row-major.
    data: Vec<f64>,
}

impl IntegralImage {
    /// Build from an image.
    pub fn build(im: &GrayImage) -> IntegralImage {
        let w = im.width();
        let h = im.height();
        let stride = w + 1;
        let mut data = vec![0.0f64; stride * (h + 1)];
        for y in 0..h {
            let mut row_sum = 0.0f64;
            for x in 0..w {
                row_sum += im.get(x, y) as f64;
                data[(y + 1) * stride + (x + 1)] = data[y * stride + (x + 1)] + row_sum;
            }
        }
        IntegralImage { width: w, height: h, data }
    }

    /// Source image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Source image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sum over the rectangle `[x0, x1) × [y0, y1)`, clamped to the image.
    pub fn box_sum(&self, x0: isize, y0: isize, x1: isize, y1: isize) -> f64 {
        let cx0 = x0.clamp(0, self.width as isize) as usize;
        let cy0 = y0.clamp(0, self.height as isize) as usize;
        let cx1 = x1.clamp(0, self.width as isize) as usize;
        let cy1 = y1.clamp(0, self.height as isize) as usize;
        if cx1 <= cx0 || cy1 <= cy0 {
            return 0.0;
        }
        let stride = self.width + 1;
        let a = self.data[cy0 * stride + cx0];
        let b = self.data[cy0 * stride + cx1];
        let c = self.data[cy1 * stride + cx0];
        let d = self.data[cy1 * stride + cx1];
        d - b - c + a
    }

    /// Haar wavelet response in x at `(cx, cy)` with filter size `s`
    /// (right half minus left half).
    pub fn haar_x(&self, cx: isize, cy: isize, s: isize) -> f64 {
        let half = s / 2;
        self.box_sum(cx, cy - half, cx + half, cy + half)
            - self.box_sum(cx - half, cy - half, cx, cy + half)
    }

    /// Haar wavelet response in y at `(cx, cy)` with filter size `s`
    /// (bottom half minus top half).
    pub fn haar_y(&self, cx: isize, cy: isize, s: isize) -> f64 {
        let half = s / 2;
        self.box_sum(cx - half, cy, cx + half, cy + half)
            - self.box_sum(cx - half, cy - half, cx + half, cy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_sum_matches_naive() {
        let im = GrayImage::from_fn(7, 5, |x, y| (x * 5 + y * 3) as f32 * 0.1);
        let ii = IntegralImage::build(&im);
        for (x0, y0, x1, y1) in [(0, 0, 7, 5), (1, 1, 4, 3), (2, 0, 3, 5), (0, 2, 7, 3)] {
            let mut naive = 0.0f64;
            for y in y0..y1 {
                for x in x0..x1 {
                    naive += im.get(x, y) as f64;
                }
            }
            let fast = ii.box_sum(x0 as isize, y0 as isize, x1 as isize, y1 as isize);
            assert!((fast - naive).abs() < 1e-9, "({x0},{y0},{x1},{y1}): {fast} vs {naive}");
        }
    }

    #[test]
    fn out_of_bounds_clamped() {
        let im = GrayImage::filled(4, 4, 1.0);
        let ii = IntegralImage::build(&im);
        assert_eq!(ii.box_sum(-10, -10, 100, 100), 16.0);
        assert_eq!(ii.box_sum(2, 2, 2, 5), 0.0); // empty
        assert_eq!(ii.box_sum(3, 3, -1, -1), 0.0); // inverted
    }

    #[test]
    fn haar_responses_on_gradients() {
        // Intensity ramp along +x: haar_x positive, haar_y ~0.
        let im = GrayImage::from_fn(32, 32, |x, _| x as f32 * 0.03);
        let ii = IntegralImage::build(&im);
        assert!(ii.haar_x(16, 16, 8) > 0.1);
        assert!(ii.haar_y(16, 16, 8).abs() < 1e-9);
        // Ramp along +y: the reverse.
        let im = GrayImage::from_fn(32, 32, |_, y| y as f32 * 0.03);
        let ii = IntegralImage::build(&im);
        assert!(ii.haar_y(16, 16, 8) > 0.1);
        assert!(ii.haar_x(16, 16, 8).abs() < 1e-9);
    }

    #[test]
    fn constant_image_has_zero_haar() {
        let im = GrayImage::filled(16, 16, 0.5);
        let ii = IntegralImage::build(&im);
        assert_eq!(ii.haar_x(8, 8, 6), 0.0);
        assert_eq!(ii.haar_y(8, 8, 6), 0.0);
    }
}
