//! # texid-store — durability layer for the feature store
//!
//! The paper's deployment keeps serialized reference features in a Redis
//! container so GPU shards can reload them after a restart (PAPER.md §IV);
//! `texid_distrib::kv::KvStore` stands in for that container, and this
//! crate is what makes it *durable*: an append-only CRC32C-checksummed
//! write-ahead log, periodic checksummed snapshots with log compaction,
//! and a crash-consistent replay path that powers `Cluster::heal()`.
//!
//! Module map:
//!
//! * [`crc`] — CRC32C (Castagnoli), the checksum under every record and
//!   snapshot.
//! * [`media`] — where bytes live: [`media::MemMedia`] for in-process
//!   clusters and chaos tests, [`media::FileMedia`] for the `texid` CLI.
//! * [`wal`] — the length-prefixed record codec and the damage-classifying
//!   scanner (torn tails stop the scan; bit-flipped records are skipped
//!   without losing alignment).
//! * [`snapshot`] — the compacted, self-verifying image of the store.
//! * [`log`] — [`log::DurableLog`], composing the above into append /
//!   snapshot / replay with mechanism-level fault hooks
//!   ([`log::WriteFault`], [`log::SnapshotFault`]); *when* faults fire is
//!   the cluster fault plan's business, not this crate's.
//!
//! Design notes live in DESIGN.md §12; the `texid_wal_*` /
//! `texid_replay_*` metrics this feeds are cataloged in OBSERVABILITY.md.

#![deny(missing_docs)]

pub mod crc;
pub mod log;
pub mod media;
pub mod snapshot;
pub mod wal;

pub use crc::crc32c;
pub use log::{DurableLog, LogConfig, ReplayStats, SnapshotFault, WalStats, WriteFault};
pub use media::{FileMedia, Media, MemMedia, Volume};
pub use wal::{Record, Scan};
