//! Product traceability — the paper's motivating application (§1, [27]).
//!
//! Two tasks on the same index:
//! * **one-to-one verification**: "is this photo the brick it claims to
//!   be?" — match a query against a single claimed reference and apply the
//!   match-count threshold plus RANSAC geometric verification;
//! * **one-to-many search**: "which brick is this?" — search the whole
//!   reference set.
//!
//! Includes counterfeit attempts (queries of textures never enrolled) to
//! exercise the rejection path.
//!
//! ```sh
//! cargo run --release -p texid-apps --example tea_brick_traceability
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use texid_core::{Engine, EngineConfig};
use texid_gpu::{DeviceSpec, GpuSim};
use texid_image::{CaptureCondition, TextureGenerator};
use texid_knn::geometry::{verify_matches, RansacParams};
use texid_knn::{match_pair, ExecMode, FeatureBlock, MatchConfig};
use texid_sift::{extract, FeatureMatrix, SiftConfig};

const GENUINE: u64 = 30; // enrolled bricks
const MATCH_THRESHOLD: usize = 10; // min good matches to accept
const INLIER_THRESHOLD: usize = 8; // min RANSAC inliers to accept

fn main() {
    let factory = TextureGenerator::with_size(256);
    let ref_cfg = SiftConfig::reference(384);
    let query_cfg = SiftConfig::query(768);
    let mut rng = SmallRng::seed_from_u64(0xb41c);

    // --- enrollment ---
    println!("enrolling {GENUINE} genuine tea bricks ...");
    let refs: Vec<FeatureMatrix> =
        (0..GENUINE).map(|id| extract(&factory.generate(id), &ref_cfg)).collect();
    let mut engine = Engine::new(EngineConfig::default());
    for (id, f) in refs.iter().enumerate() {
        engine.add_reference(id as u64, f).expect("capacity");
    }
    engine.flush().expect("seal");

    // --- one-to-one verification ---
    println!("\n== one-to-one verification ==");
    let matching = MatchConfig { exec: ExecMode::Full, ..MatchConfig::default() };
    let mut sim = GpuSim::new(DeviceSpec::tesla_p100());
    let stream = sim.default_stream();

    // A genuine re-capture of brick 12, claimed as brick 12: accept.
    let capture = CaptureCondition::moderate(&mut rng);
    let genuine_q = extract(&capture.apply(&factory.generate(12), 1), &query_cfg);
    verify(&matching, &refs[12], &genuine_q, "genuine brick 12 vs claim 12", true, &mut sim, stream);

    // The same photo claimed as brick 13: reject.
    verify(&matching, &refs[13], &genuine_q, "genuine brick 12 vs claim 13", false, &mut sim, stream);

    // A counterfeit (texture never manufactured), claimed as brick 12: reject.
    let fake_q = extract(
        &CaptureCondition::mild(&mut rng).apply(&factory.generate(9_999), 2),
        &query_cfg,
    );
    verify(&matching, &refs[12], &fake_q, "counterfeit vs claim 12", false, &mut sim, stream);

    // --- one-to-many search ---
    println!("\n== one-to-many search ==");
    let mut correct = 0;
    for trial in 0..8u64 {
        let true_id = (trial * 3 + 1) % GENUINE;
        let q = extract(
            &CaptureCondition::moderate(&mut rng).apply(&factory.generate(true_id), trial),
            &query_cfg,
        );
        let result = engine.search(&q);
        let hit = result.best(MATCH_THRESHOLD);
        let ok = hit.map(|(id, _)| id) == Some(true_id);
        correct += ok as u64;
        println!(
            "  query of brick {true_id:>2}: {} (score {})",
            hit.map_or("NO MATCH".to_string(), |(id, _)| format!("identified {id}")),
            hit.map_or(0, |(_, s)| s)
        );
    }
    println!("search top-1: {correct}/8");

    // A counterfeit in the search path must come back below threshold.
    let counterfeit = extract(
        &CaptureCondition::mild(&mut rng).apply(&factory.generate(55_555), 3),
        &query_cfg,
    );
    let result = engine.search(&counterfeit);
    println!(
        "counterfeit search: best score {} -> {}",
        result.ranked[0].1,
        if result.best(MATCH_THRESHOLD).is_none() { "correctly rejected" } else { "WRONGLY ACCEPTED" }
    );
    assert!(result.best(MATCH_THRESHOLD).is_none());
    assert_eq!(correct, 8);
}

/// One-to-one verification with ratio test + geometric verification.
fn verify(
    matching: &MatchConfig,
    reference: &FeatureMatrix,
    query: &FeatureMatrix,
    label: &str,
    expect_accept: bool,
    sim: &mut GpuSim,
    stream: texid_gpu::StreamId,
) {
    let rb = FeatureBlock::from_mat(reference.mat.clone(), matching.precision, matching.scale);
    let qb = FeatureBlock::from_mat(query.mat.clone(), matching.precision, matching.scale);
    let outcome = match_pair(matching, &rb, &qb, sim, stream);

    let geo = verify_matches(
        &outcome.matches,
        &reference.keypoints,
        &query.keypoints,
        &RansacParams::default(),
    );
    let accept = outcome.score() >= MATCH_THRESHOLD && geo.inlier_count() >= INLIER_THRESHOLD;
    println!(
        "  {label}: {} good matches, {} geometric inliers (scale {:.2}, rot {:.1} deg) -> {}",
        outcome.score(),
        geo.inlier_count(),
        geo.transform.scale(),
        geo.transform.rotation().to_degrees(),
        if accept { "ACCEPT" } else { "REJECT" }
    );
    assert_eq!(accept, expect_accept, "verification outcome for '{label}'");
}
