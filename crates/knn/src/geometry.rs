//! Geometric verification — the final stage of the image-matching pipeline
//! (Fig. 2), removing outlier correspondences.
//!
//! The paper excludes this stage from its speed experiments ("no geometrical
//! verification is conducted") but it belongs to the identification pipeline
//! proper; the accuracy examples use it. We estimate a 2-D **similarity
//! transform** (rotation + uniform scale + translation — the family the
//! capture conditions span) with RANSAC over the ratio-test matches, and
//! report the inlier set.

use crate::ratio::FeatureMatch;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use texid_sift::Keypoint;

/// A 2-D similarity transform `p' = s·R(θ)·p + t`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Similarity {
    /// `s·cos θ`.
    pub a: f32,
    /// `s·sin θ`.
    pub b: f32,
    /// Translation x.
    pub tx: f32,
    /// Translation y.
    pub ty: f32,
}

impl Similarity {
    /// Identity transform.
    pub fn identity() -> Similarity {
        Similarity { a: 1.0, b: 0.0, tx: 0.0, ty: 0.0 }
    }

    /// Apply to a point.
    pub fn apply(&self, x: f32, y: f32) -> (f32, f32) {
        (self.a * x - self.b * y + self.tx, self.b * x + self.a * y + self.ty)
    }

    /// Scale factor `s`.
    pub fn scale(&self) -> f32 {
        (self.a * self.a + self.b * self.b).sqrt()
    }

    /// Rotation angle θ, radians.
    pub fn rotation(&self) -> f32 {
        self.b.atan2(self.a)
    }

    /// Exact fit from two point correspondences `(p, p')`.
    /// Returns `None` when the source points coincide (degenerate).
    pub fn from_two_points(
        p1: (f32, f32),
        p1p: (f32, f32),
        p2: (f32, f32),
        p2p: (f32, f32),
    ) -> Option<Similarity> {
        let dx = p2.0 - p1.0;
        let dy = p2.1 - p1.1;
        let denom = dx * dx + dy * dy;
        if denom < 1e-9 {
            return None;
        }
        let dxp = p2p.0 - p1p.0;
        let dyp = p2p.1 - p1p.1;
        // Complex division (dxp + i·dyp) / (dx + i·dy).
        let a = (dxp * dx + dyp * dy) / denom;
        let b = (dyp * dx - dxp * dy) / denom;
        let tx = p1p.0 - (a * p1.0 - b * p1.1);
        let ty = p1p.1 - (b * p1.0 + a * p1.1);
        Some(Similarity { a, b, tx, ty })
    }
}

/// A full 2-D affine transform `p' = A·p + t` (six degrees of freedom:
/// rotation, anisotropic scale, shear, translation). Strictly more
/// expressive than [`Similarity`]; useful when the capture includes
/// out-of-plane tilt that a similarity cannot absorb.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Affine {
    /// Matrix entry (0,0).
    pub a: f32,
    /// Matrix entry (0,1).
    pub b: f32,
    /// Matrix entry (1,0).
    pub c: f32,
    /// Matrix entry (1,1).
    pub d: f32,
    /// Translation x.
    pub tx: f32,
    /// Translation y.
    pub ty: f32,
}

impl Affine {
    /// Identity transform.
    pub fn identity() -> Affine {
        Affine { a: 1.0, b: 0.0, c: 0.0, d: 1.0, tx: 0.0, ty: 0.0 }
    }

    /// Apply to a point.
    pub fn apply(&self, x: f32, y: f32) -> (f32, f32) {
        (self.a * x + self.b * y + self.tx, self.c * x + self.d * y + self.ty)
    }

    /// Determinant of the linear part (area scaling; ≤0 ⇒ reflection or
    /// degenerate).
    pub fn det(&self) -> f32 {
        self.a * self.d - self.b * self.c
    }

    /// Exact fit from three point correspondences. Returns `None` when the
    /// source points are (nearly) collinear.
    pub fn from_three_points(
        src: [(f32, f32); 3],
        dst: [(f32, f32); 3],
    ) -> Option<Affine> {
        // Solve [x y 1]·[a b tx]ᵀ = x' and [x y 1]·[c d ty]ᵀ = y' by
        // Cramer's rule on the 3×3 source matrix.
        let det = src[0].0 * (src[1].1 - src[2].1) - src[0].1 * (src[1].0 - src[2].0)
            + (src[1].0 * src[2].1 - src[2].0 * src[1].1);
        // Degeneracy scale: compare against the triangle's extent.
        let extent = (src[1].0 - src[0].0).hypot(src[1].1 - src[0].1)
            * (src[2].0 - src[0].0).hypot(src[2].1 - src[0].1);
        if det.abs() < 1e-6 * extent.max(1.0) {
            return None;
        }
        let solve = |r: [f32; 3]| -> (f32, f32, f32) {
            // Coefficients for row-vector unknowns (u, v, w) with
            // u·x + v·y + w = r per correspondence.
            let d0 = r[0] * (src[1].1 - src[2].1) - src[0].1 * (r[1] - r[2])
                + (r[1] * src[2].1 - r[2] * src[1].1);
            let d1 = src[0].0 * (r[1] - r[2]) - r[0] * (src[1].0 - src[2].0)
                + (src[1].0 * r[2] - src[2].0 * r[1]);
            let d2 = src[0].0 * (src[1].1 * r[2] - src[2].1 * r[1])
                - src[0].1 * (src[1].0 * r[2] - src[2].0 * r[1])
                + r[0] * (src[1].0 * src[2].1 - src[2].0 * src[1].1);
            (d0 / det, d1 / det, d2 / det)
        };
        let (a, b, tx) = solve([dst[0].0, dst[1].0, dst[2].0]);
        let (c, d, ty) = solve([dst[0].1, dst[1].1, dst[2].1]);
        Some(Affine { a, b, c, d, tx, ty })
    }
}

/// A planar homography `p' ~ H·p` (eight degrees of freedom) — the model
/// for full out-of-plane viewpoint change of a planar texture patch, which
/// the tea-brick surfaces are.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Homography {
    /// Row-major 3×3 matrix, normalized to `h[8] = 1`.
    pub h: [f32; 9],
}

impl Homography {
    /// Identity.
    pub fn identity() -> Homography {
        Homography { h: [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0] }
    }

    /// Apply with the perspective divide. Returns `None` on a point at
    /// infinity (denominator ~0).
    pub fn apply(&self, x: f32, y: f32) -> Option<(f32, f32)> {
        let w = self.h[6] * x + self.h[7] * y + self.h[8];
        if w.abs() < 1e-9 {
            return None;
        }
        Some((
            (self.h[0] * x + self.h[1] * y + self.h[2]) / w,
            (self.h[3] * x + self.h[4] * y + self.h[5]) / w,
        ))
    }

    /// Exact DLT fit from four correspondences (h33 = 1 normalization).
    /// Returns `None` for degenerate configurations (three collinear
    /// source points make the 8×8 system singular).
    pub fn from_four_points(src: [(f32, f32); 4], dst: [(f32, f32); 4]) -> Option<Homography> {
        // Build the 8×8 system A·h = b for h = (h11..h32), h33 = 1.
        let mut a = [[0.0f64; 8]; 8];
        let mut b = [0.0f64; 8];
        for (k, (&(x, y), &(u, v))) in src.iter().zip(dst.iter()).enumerate() {
            let (x, y, u, v) = (x as f64, y as f64, u as f64, v as f64);
            a[2 * k] = [x, y, 1.0, 0.0, 0.0, 0.0, -u * x, -u * y];
            b[2 * k] = u;
            a[2 * k + 1] = [0.0, 0.0, 0.0, x, y, 1.0, -v * x, -v * y];
            b[2 * k + 1] = v;
        }
        let h = solve8(&mut a, &mut b)?;
        Some(Homography {
            h: [
                h[0] as f32,
                h[1] as f32,
                h[2] as f32,
                h[3] as f32,
                h[4] as f32,
                h[5] as f32,
                h[6] as f32,
                h[7] as f32,
                1.0,
            ],
        })
    }
}

/// Gaussian elimination with partial pivoting on an 8×8 system.
fn solve8(a: &mut [[f64; 8]; 8], b: &mut [f64; 8]) -> Option<[f64; 8]> {
    for col in 0..8 {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..8 {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-10 {
            return None; // singular
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        let pivot_row = a[col];
        for row in col + 1..8 {
            let f = a[row][col] / pivot_row[col];
            for (dst, src) in a[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *dst -= f * src;
            }
            b[row] -= f * b[col];
        }
    }
    // Back-substitute.
    let mut x = [0.0f64; 8];
    for col in (0..8).rev() {
        let mut s = b[col];
        for c in col + 1..8 {
            s -= a[col][c] * x[c];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

/// RANSAC parameters.
#[derive(Clone, Copy, Debug)]
pub struct RansacParams {
    /// Sampling iterations.
    pub iterations: usize,
    /// Inlier reprojection tolerance, pixels.
    pub inlier_tolerance: f32,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for RansacParams {
    fn default() -> Self {
        RansacParams { iterations: 200, inlier_tolerance: 3.0, seed: 0x9e3779b9 }
    }
}

/// Result of geometric verification.
#[derive(Clone, Debug)]
pub struct Verification {
    /// Best model found (identity when no model fit).
    pub transform: Similarity,
    /// Indices into the input match list that are inliers.
    pub inliers: Vec<usize>,
}

impl Verification {
    /// Verified match count — the score used for the final decision.
    pub fn inlier_count(&self) -> usize {
        self.inliers.len()
    }
}

/// Run RANSAC over ratio-test matches. `ref_kps`/`query_kps` are the
/// keypoint lists the match indices refer to (reference → query direction).
///
/// With fewer than two matches, verification degenerates to zero inliers.
pub fn verify_matches(
    matches: &[FeatureMatch],
    ref_kps: &[Keypoint],
    query_kps: &[Keypoint],
    params: &RansacParams,
) -> Verification {
    if matches.len() < 2 {
        return Verification { transform: Similarity::identity(), inliers: Vec::new() };
    }
    let pts: Vec<((f32, f32), (f32, f32))> = matches
        .iter()
        .map(|m| {
            let r = &ref_kps[m.ref_idx as usize];
            let q = &query_kps[m.query_idx as usize];
            ((r.x, r.y), (q.x, q.y))
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut best: Option<(Similarity, Vec<usize>)> = None;
    let tol2 = params.inlier_tolerance * params.inlier_tolerance;

    for _ in 0..params.iterations {
        let i = rng.gen_range(0..pts.len());
        let mut j = rng.gen_range(0..pts.len());
        if i == j {
            j = (j + 1) % pts.len();
        }
        let Some(model) = Similarity::from_two_points(pts[i].0, pts[i].1, pts[j].0, pts[j].1)
        else {
            continue;
        };
        // Reject wild scale estimates (capture zoom stays near 1).
        let s = model.scale();
        if !(0.3..3.0).contains(&s) {
            continue;
        }
        let inliers: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, (p, pp))| {
                let (x, y) = model.apply(p.0, p.1);
                let dx = x - pp.0;
                let dy = y - pp.1;
                dx * dx + dy * dy <= tol2
            })
            .map(|(k, _)| k)
            .collect();
        if best.as_ref().is_none_or(|(_, b)| inliers.len() > b.len()) {
            best = Some((model, inliers));
        }
    }

    match best {
        Some((transform, inliers)) => Verification { transform, inliers },
        None => Verification { transform: Similarity::identity(), inliers: Vec::new() },
    }
}

/// RANSAC over ratio-test matches with the **affine** model (3-point
/// minimal samples). Interface mirrors [`verify_matches`]; returns the
/// best transform and its inlier indices.
pub fn verify_matches_affine(
    matches: &[FeatureMatch],
    ref_kps: &[Keypoint],
    query_kps: &[Keypoint],
    params: &RansacParams,
) -> (Affine, Vec<usize>) {
    if matches.len() < 3 {
        return (Affine::identity(), Vec::new());
    }
    let pts: Vec<((f32, f32), (f32, f32))> = matches
        .iter()
        .map(|m| {
            let r = &ref_kps[m.ref_idx as usize];
            let q = &query_kps[m.query_idx as usize];
            ((r.x, r.y), (q.x, q.y))
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0xaff1);
    let mut best: Option<(Affine, Vec<usize>)> = None;
    let tol2 = params.inlier_tolerance * params.inlier_tolerance;

    for _ in 0..params.iterations {
        let i = rng.gen_range(0..pts.len());
        let mut j = rng.gen_range(0..pts.len());
        let mut k = rng.gen_range(0..pts.len());
        if j == i {
            j = (j + 1) % pts.len();
        }
        while k == i || k == j {
            k = (k + 1) % pts.len();
        }
        let Some(model) = Affine::from_three_points(
            [pts[i].0, pts[j].0, pts[k].0],
            [pts[i].1, pts[j].1, pts[k].1],
        ) else {
            continue;
        };
        // Physically plausible captures only: area scaling near 1, no
        // reflections.
        let det = model.det();
        if !(0.1..10.0).contains(&det) {
            continue;
        }
        let inliers: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, (p, pp))| {
                let (x, y) = model.apply(p.0, p.1);
                let dx = x - pp.0;
                let dy = y - pp.1;
                dx * dx + dy * dy <= tol2
            })
            .map(|(idx, _)| idx)
            .collect();
        if best.as_ref().is_none_or(|(_, b)| inliers.len() > b.len()) {
            best = Some((model, inliers));
        }
    }
    best.unwrap_or((Affine::identity(), Vec::new()))
}

/// RANSAC with the **homography** model (4-point minimal samples). Returns
/// the best model and its inlier indices. Needs ≥ 4 matches.
pub fn verify_matches_homography(
    matches: &[FeatureMatch],
    ref_kps: &[Keypoint],
    query_kps: &[Keypoint],
    params: &RansacParams,
) -> (Homography, Vec<usize>) {
    if matches.len() < 4 {
        return (Homography::identity(), Vec::new());
    }
    let pts: Vec<((f32, f32), (f32, f32))> = matches
        .iter()
        .map(|m| {
            let r = &ref_kps[m.ref_idx as usize];
            let q = &query_kps[m.query_idx as usize];
            ((r.x, r.y), (q.x, q.y))
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x40_0070);
    let mut best: Option<(Homography, Vec<usize>)> = None;
    let tol2 = params.inlier_tolerance * params.inlier_tolerance;

    for _ in 0..params.iterations {
        // Four distinct sample indices.
        let mut idx = [0usize; 4];
        for k in 0..4 {
            let mut candidate = rng.gen_range(0..pts.len());
            while idx[..k].contains(&candidate) {
                candidate = (candidate + 1) % pts.len();
            }
            idx[k] = candidate;
        }
        let src = [pts[idx[0]].0, pts[idx[1]].0, pts[idx[2]].0, pts[idx[3]].0];
        let dst = [pts[idx[0]].1, pts[idx[1]].1, pts[idx[2]].1, pts[idx[3]].1];
        let Some(model) = Homography::from_four_points(src, dst) else {
            continue;
        };
        let inliers: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, (p, pp))| {
                model.apply(p.0, p.1).is_some_and(|(x, y)| {
                    let dx = x - pp.0;
                    let dy = y - pp.1;
                    dx * dx + dy * dy <= tol2
                })
            })
            .map(|(k, _)| k)
            .collect();
        if best.as_ref().is_none_or(|(_, b)| inliers.len() > b.len()) {
            best = Some((model, inliers));
        }
    }
    best.unwrap_or((Homography::identity(), Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(x: f32, y: f32) -> Keypoint {
        Keypoint {
            x,
            y,
            sigma: 1.6,
            orientation: 0.0,
            response: 1.0,
            octave: 0,
            interval: 0.0,
            oct_x: x,
            oct_y: y,
        }
    }

    /// Build matches under a known transform, with `n_outliers` corrupted.
    fn planted(
        model: Similarity,
        n_inliers: usize,
        n_outliers: usize,
    ) -> (Vec<FeatureMatch>, Vec<Keypoint>, Vec<Keypoint>) {
        let mut ref_kps = Vec::new();
        let mut query_kps = Vec::new();
        let mut matches = Vec::new();
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) & 0xffff) as f32 / 65535.0 * 200.0
        };
        for i in 0..n_inliers + n_outliers {
            let x = next();
            let y = next();
            ref_kps.push(kp(x, y));
            let (qx, qy) = if i < n_inliers {
                model.apply(x, y)
            } else {
                (next(), next()) // random — geometric outlier
            };
            query_kps.push(kp(qx, qy));
            matches.push(FeatureMatch { query_idx: i as u32, ref_idx: i as u32, d1: 0.1, d2: 1.0 });
        }
        (matches, ref_kps, query_kps)
    }

    #[test]
    fn homography_four_point_fit_exact() {
        // A keystone warp (perspective foreshortening).
        let truth = Homography { h: [1.0, 0.1, 5.0, 0.05, 0.95, -3.0, 1e-3, 2e-4, 1.0] };
        let src = [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)];
        let dst = src.map(|(x, y)| truth.apply(x, y).unwrap());
        let fit = Homography::from_four_points(src, dst).unwrap();
        for (a, b) in fit.h.iter().zip(truth.h.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // And it reproduces an unseen point.
        let (x, y) = fit.apply(37.0, 64.0).unwrap();
        let (tx, ty) = truth.apply(37.0, 64.0).unwrap();
        assert!((x - tx).abs() < 1e-2 && (y - ty).abs() < 1e-2);
    }

    #[test]
    fn homography_rejects_collinear_sources() {
        let src = [(0.0, 0.0), (10.0, 10.0), (20.0, 20.0), (5.0, 0.0)];
        let dst = [(0.0, 0.0), (10.0, 10.0), (20.0, 20.0), (5.0, 0.0)];
        assert!(Homography::from_four_points(src, dst).is_none());
    }

    #[test]
    fn homography_ransac_beats_affine_on_perspective_data() {
        // Plant a genuinely projective transform: affine cannot fit it.
        let truth = Homography { h: [0.95, 0.05, 10.0, -0.03, 1.02, 4.0, 8e-4, -5e-4, 1.0] };
        let mut ref_kps = Vec::new();
        let mut query_kps = Vec::new();
        let mut matches = Vec::new();
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) & 0xffff) as f32 / 65535.0 * 250.0
        };
        for i in 0..70 {
            let x = next();
            let y = next();
            ref_kps.push(kp(x, y));
            let (qx, qy) = if i < 55 {
                truth.apply(x, y).unwrap()
            } else {
                (next(), next())
            };
            query_kps.push(kp(qx, qy));
            matches.push(FeatureMatch { query_idx: i as u32, ref_idx: i as u32, d1: 0.1, d2: 1.0 });
        }
        let tight = RansacParams { inlier_tolerance: 1.5, iterations: 500, ..RansacParams::default() };
        let (fit, h_inliers) = verify_matches_homography(&matches, &ref_kps, &query_kps, &tight);
        assert!(h_inliers.len() >= 50, "homography found {} inliers", h_inliers.len());
        assert!((fit.h[6] - truth.h[6]).abs() < 3e-4, "perspective term {}", fit.h[6]);
        let (_, a_inliers) = verify_matches_affine(&matches, &ref_kps, &query_kps, &tight);
        assert!(
            h_inliers.len() > a_inliers.len(),
            "homography {} vs affine {}",
            h_inliers.len(),
            a_inliers.len()
        );
    }

    #[test]
    fn homography_needs_four_matches() {
        let (matches, rk, qk) = planted(Similarity::identity(), 3, 0);
        let (fit, inliers) = verify_matches_homography(&matches, &rk, &qk, &RansacParams::default());
        assert_eq!(fit, Homography::identity());
        assert!(inliers.is_empty());
    }

    #[test]
    fn affine_three_point_fit_exact() {
        let truth = Affine { a: 1.1, b: 0.2, c: -0.1, d: 0.9, tx: 5.0, ty: -3.0 };
        let src = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let dst = [truth.apply(0.0, 0.0), truth.apply(10.0, 0.0), truth.apply(0.0, 10.0)];
        let fit = Affine::from_three_points(src, dst).unwrap();
        for (a, b) in [
            (fit.a, truth.a),
            (fit.b, truth.b),
            (fit.c, truth.c),
            (fit.d, truth.d),
            (fit.tx, truth.tx),
            (fit.ty, truth.ty),
        ] {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn affine_rejects_collinear_sources() {
        let src = [(0.0, 0.0), (5.0, 5.0), (10.0, 10.0)];
        let dst = [(0.0, 0.0), (1.0, 2.0), (3.0, 4.0)];
        assert!(Affine::from_three_points(src, dst).is_none());
    }

    #[test]
    fn affine_ransac_recovers_anisotropic_transform() {
        // A transform with shear that the similarity model cannot express.
        let truth = Affine { a: 1.05, b: 0.15, c: 0.02, d: 0.92, tx: 8.0, ty: -4.0 };
        let mut ref_kps = Vec::new();
        let mut query_kps = Vec::new();
        let mut matches = Vec::new();
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) & 0xffff) as f32 / 65535.0 * 200.0
        };
        for i in 0..80 {
            let x = next();
            let y = next();
            ref_kps.push(kp(x, y));
            let (qx, qy) = if i < 60 { truth.apply(x, y) } else { (next(), next()) };
            query_kps.push(kp(qx, qy));
            matches.push(FeatureMatch { query_idx: i as u32, ref_idx: i as u32, d1: 0.1, d2: 1.0 });
        }
        let (fit, inliers) =
            verify_matches_affine(&matches, &ref_kps, &query_kps, &RansacParams::default());
        assert!(inliers.len() >= 55, "found {} inliers", inliers.len());
        assert!((fit.a - truth.a).abs() < 0.02);
        assert!((fit.b - truth.b).abs() < 0.02);
        assert!((fit.det() - truth.det()).abs() < 0.04);
        // The similarity model fits fewer inliers on sheared data at a
        // tight tolerance.
        let tight = RansacParams { inlier_tolerance: 1.5, ..RansacParams::default() };
        let sim_v = verify_matches(&matches, &ref_kps, &query_kps, &tight);
        let (_, aff_inliers) = verify_matches_affine(&matches, &ref_kps, &query_kps, &tight);
        assert!(
            aff_inliers.len() > sim_v.inlier_count(),
            "affine {} vs similarity {}",
            aff_inliers.len(),
            sim_v.inlier_count()
        );
    }

    #[test]
    fn affine_needs_three_matches() {
        let (matches, rk, qk) = planted(Similarity::identity(), 2, 0);
        let (fit, inliers) = verify_matches_affine(&matches, &rk, &qk, &RansacParams::default());
        assert_eq!(fit, Affine::identity());
        assert!(inliers.is_empty());
    }

    #[test]
    fn two_point_fit_recovers_rotation() {
        // 90° rotation about origin: (x, y) → (−y, x).
        let m = Similarity::from_two_points((1.0, 0.0), (0.0, 1.0), (0.0, 1.0), (-1.0, 0.0))
            .unwrap();
        assert!((m.scale() - 1.0).abs() < 1e-5);
        assert!((m.rotation() - core::f32::consts::FRAC_PI_2).abs() < 1e-5);
        let (x, y) = m.apply(2.0, 3.0);
        assert!((x + 3.0).abs() < 1e-4 && (y - 2.0).abs() < 1e-4);
    }

    #[test]
    fn degenerate_points_rejected() {
        assert!(Similarity::from_two_points((1.0, 1.0), (2.0, 2.0), (1.0, 1.0), (3.0, 3.0))
            .is_none());
    }

    #[test]
    fn ransac_recovers_planted_transform() {
        let truth = Similarity { a: 0.95, b: 0.18, tx: 12.0, ty: -7.0 }; // ~10.7°, s≈0.967
        let (matches, rk, qk) = planted(truth, 60, 40);
        let v = verify_matches(&matches, &rk, &qk, &RansacParams::default());
        assert!(v.inlier_count() >= 55, "found {} inliers", v.inlier_count());
        assert!((v.transform.scale() - truth.scale()).abs() < 0.02);
        assert!((v.transform.rotation() - truth.rotation()).abs() < 0.02);
        // All recovered inliers must truly be inliers (first 60).
        assert!(v.inliers.iter().all(|&i| i < 60));
    }

    #[test]
    fn pure_outliers_give_few_inliers() {
        let truth = Similarity::identity();
        let (matches, rk, qk) = planted(truth, 0, 50);
        let v = verify_matches(&matches, &rk, &qk, &RansacParams::default());
        // Random correspondences support no consistent similarity.
        assert!(v.inlier_count() <= 6, "{} spurious inliers", v.inlier_count());
    }

    #[test]
    fn fewer_than_two_matches_degenerates() {
        let (matches, rk, qk) = planted(Similarity::identity(), 1, 0);
        let v = verify_matches(&matches, &rk, &qk, &RansacParams::default());
        assert_eq!(v.inlier_count(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let truth = Similarity { a: 1.02, b: -0.08, tx: 3.0, ty: 4.0 };
        let (matches, rk, qk) = planted(truth, 30, 30);
        let a = verify_matches(&matches, &rk, &qk, &RansacParams::default());
        let b = verify_matches(&matches, &rk, &qk, &RansacParams::default());
        assert_eq!(a.inliers, b.inliers);
    }

    #[test]
    fn wild_scales_rejected() {
        // A model implying 10× zoom must not be accepted even if two points
        // support it: plant mostly identity, two 10×-scale-consistent pairs.
        let (mut matches, mut rk, mut qk) = planted(Similarity::identity(), 20, 0);
        rk.push(kp(1.0, 0.0));
        qk.push(kp(10.0, 0.0));
        matches.push(FeatureMatch { query_idx: 20, ref_idx: 20, d1: 0.1, d2: 1.0 });
        rk.push(kp(2.0, 0.0));
        qk.push(kp(20.0, 0.0));
        matches.push(FeatureMatch { query_idx: 21, ref_idx: 21, d1: 0.1, d2: 1.0 });
        let v = verify_matches(&matches, &rk, &qk, &RansacParams::default());
        assert!((v.transform.scale() - 1.0).abs() < 0.05, "scale {}", v.transform.scale());
    }
}
