//! Redis substrate: a thread-safe key/value store with per-value
//! checksums and an optional durability log.
//!
//! The paper's deployment keeps serialized reference feature matrices in a
//! Redis container so GPU containers can (re)load their shard on startup.
//! This is the equivalent, grown two capabilities past the original
//! in-memory map (DESIGN.md §12):
//!
//! * **Per-value CRC32C** — every `set` seals the value with a checksum,
//!   and [`KvStore::get_with_crc`] hands both back so the cluster's
//!   fault-wrapped read path can tell *corrupt* from *missing* instead of
//!   deserializing garbage.
//! * **Write-ahead logging** — a store built with [`KvStore::durable`]
//!   appends every `set`/`del` to a [`texid_store::DurableLog`] before
//!   mutating the map, can compact into a checksummed snapshot, and can
//!   [`KvStore::replay`] itself strictly from the media — the primitive
//!   `Cluster::heal()` uses to recover crashed shards. Records the fault
//!   plan tore or lost simply never come back, which is exactly the signal
//!   recovery quarantines on.
//!
//! [`KvStore::new`] stays a plain in-memory store (no log, no durability)
//! so unit tests and ephemeral tooling pay nothing.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use texid_store::{crc32c, DurableLog, Record, ReplayStats, SnapshotFault, WalStats, WriteFault};

/// A value plus the checksum sealed over it at write time.
struct Stored {
    bytes: Vec<u8>,
    crc: u32,
}

impl Stored {
    fn seal(bytes: Vec<u8>) -> Stored {
        let crc = crc32c(&bytes);
        Stored { bytes, crc }
    }
}

/// A thread-safe KV store (Redis stand-in) with per-value CRC32C and an
/// optional write-ahead log.
#[derive(Default)]
pub struct KvStore {
    map: RwLock<BTreeMap<String, Stored>>,
    log: Option<DurableLog>,
    /// Append failures from a file-backed log (memory media never fail);
    /// surfaced through [`KvStore::wal_io_errors`] rather than poisoning
    /// the write path.
    wal_io_errors: AtomicU64,
}

impl KvStore {
    /// Create an empty, ephemeral store (no durability log).
    pub fn new() -> KvStore {
        KvStore::default()
    }

    /// Create an empty store journaling through `log`.
    pub fn durable(log: DurableLog) -> KvStore {
        KvStore { log: Some(log), ..KvStore::default() }
    }

    /// True when writes are journaled to a durable log.
    pub fn is_durable(&self) -> bool {
        self.log.is_some()
    }

    /// Set `key` to `value`, returning the previous value if any.
    pub fn set(&self, key: &str, value: Vec<u8>) -> Option<Vec<u8>> {
        self.set_faulted(key, value, WriteFault::Clean)
    }

    /// [`KvStore::set`] with an explicit durability fault on the WAL
    /// append (the cluster's fault plan decides it; the map mutation
    /// happens regardless — the writer believes the write succeeded, and
    /// only replay reveals what the media really kept).
    pub fn set_faulted(&self, key: &str, value: Vec<u8>, fault: WriteFault) -> Option<Vec<u8>> {
        if let Some(log) = &self.log {
            let rec = Record::Set { key: key.to_string(), value: value.clone() };
            if log.append(&rec, fault).is_err() {
                self.wal_io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.map.write().insert(key.to_string(), Stored::seal(value)).map(|s| s.bytes)
    }

    /// Fetch a copy of the value at `key`.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.map.read().get(key).map(|s| s.bytes.clone())
    }

    /// Fetch a copy of the value plus the CRC32C sealed over it at write
    /// time. Callers that pass the bytes through fault injection verify
    /// them against the checksum to distinguish corrupt from missing.
    pub fn get_with_crc(&self, key: &str) -> Option<(Vec<u8>, u32)> {
        self.map.read().get(key).map(|s| (s.bytes.clone(), s.crc))
    }

    /// Delete `key`, returning whether it existed.
    pub fn del(&self, key: &str) -> bool {
        self.del_faulted(key, WriteFault::Clean)
    }

    /// [`KvStore::del`] with an explicit durability fault on the WAL append.
    pub fn del_faulted(&self, key: &str, fault: WriteFault) -> bool {
        if let Some(log) = &self.log {
            let rec = Record::Del { key: key.to_string() };
            if log.append(&rec, fault).is_err() {
                self.wal_io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.map.write().remove(key).is_some()
    }

    /// True if `key` exists.
    pub fn exists(&self, key: &str) -> bool {
        self.map.read().contains_key(key)
    }

    /// All keys starting with `prefix`, in lexicographic order.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.map
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Total payload bytes stored.
    pub fn used_bytes(&self) -> u64 {
        self.map.read().values().map(|s| s.bytes.len() as u64).sum()
    }

    /// True when the log's snapshot schedule says it is time to
    /// [`KvStore::compact`]. Always false for ephemeral stores.
    pub fn snapshot_due(&self) -> bool {
        self.log.as_ref().is_some_and(|l| l.snapshot_due())
    }

    /// Write the current map as a checksummed snapshot and truncate the
    /// WAL behind it. Returns false for ephemeral stores.
    pub fn compact(&self, fault: SnapshotFault) -> bool {
        let Some(log) = &self.log else { return false };
        let entries: BTreeMap<String, Vec<u8>> =
            self.map.read().iter().map(|(k, s)| (k.clone(), s.bytes.clone())).collect();
        if log.write_snapshot(&entries, fault).is_err() {
            self.wal_io_errors.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Discard the in-memory map and rebuild it strictly from the durable
    /// media (verified snapshot + complete WAL records). Torn, lost, and
    /// bit-flipped records simply do not come back. `None` for ephemeral
    /// stores — there is nothing to replay from.
    pub fn replay(&self) -> Option<ReplayStats> {
        let log = self.log.as_ref()?;
        let (entries, stats) = match log.replay() {
            Ok(ok) => ok,
            Err(_) => {
                self.wal_io_errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let mut map = self.map.write();
        map.clear();
        for (k, v) in entries {
            map.insert(k, Stored::seal(v));
        }
        Some(stats)
    }

    /// WAL counters and blob sizes, if durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.log.as_ref().map(|l| l.stats())
    }

    /// Append failures from the underlying media (always 0 for in-memory
    /// volumes).
    pub fn wal_io_errors(&self) -> u64 {
        self.wal_io_errors.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use texid_store::{LogConfig, Volume};

    #[test]
    fn set_get_del_cycle() {
        let kv = KvStore::new();
        assert!(kv.set("a", vec![1, 2, 3]).is_none());
        assert_eq!(kv.get("a"), Some(vec![1, 2, 3]));
        assert_eq!(kv.set("a", vec![9]), Some(vec![1, 2, 3]));
        assert!(kv.del("a"));
        assert!(!kv.del("a"));
        assert_eq!(kv.get("a"), None);
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let kv = KvStore::new();
        for k in ["tex:1", "tex:2", "tex:10", "meta:x", "texture"] {
            kv.set(k, vec![]);
        }
        assert_eq!(kv.keys_with_prefix("tex:"), vec!["tex:1", "tex:10", "tex:2"]);
        assert_eq!(kv.keys_with_prefix("zzz"), Vec::<String>::new());
    }

    #[test]
    fn accounting() {
        let kv = KvStore::new();
        kv.set("a", vec![0; 100]);
        kv.set("b", vec![0; 50]);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.used_bytes(), 150);
        kv.del("a");
        assert_eq!(kv.used_bytes(), 50);
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let kv = Arc::new(KvStore::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let kv = kv.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        kv.set(&format!("k:{t}:{i}"), vec![t as u8]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(kv.len(), 800);
    }

    #[test]
    fn per_value_crc_detects_mangling() {
        let kv = KvStore::new();
        kv.set("k", vec![7; 32]);
        let (mut bytes, crc) = kv.get_with_crc("k").unwrap();
        assert_eq!(texid_store::crc32c(&bytes), crc);
        bytes[3] ^= 0x40;
        assert_ne!(texid_store::crc32c(&bytes), crc);
    }

    #[test]
    fn ephemeral_store_has_no_durability() {
        let kv = KvStore::new();
        kv.set("k", vec![1]);
        assert!(!kv.is_durable());
        assert!(!kv.snapshot_due());
        assert!(!kv.compact(SnapshotFault::Clean));
        assert!(kv.replay().is_none());
        assert!(kv.wal_stats().is_none());
    }

    #[test]
    fn durable_store_replays_clean_history() {
        let kv = KvStore::durable(DurableLog::in_memory());
        kv.set("a", vec![1]);
        kv.set("b", vec![2]);
        kv.del("a");
        kv.set("c", vec![3]);
        // Wipe the map, then rebuild from the WAL alone.
        let stats = kv.replay().unwrap();
        assert_eq!(stats.wal_records_applied, 4);
        assert!(!stats.damaged());
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.get("b"), Some(vec![2]));
        assert_eq!(kv.get("a"), None);
    }

    #[test]
    fn torn_and_lost_writes_vanish_on_replay() {
        let kv = KvStore::durable(DurableLog::in_memory());
        kv.set("kept", vec![1]);
        kv.set_faulted("lost", vec![2], WriteFault::Lose);
        kv.set_faulted("torn", vec![3; 100], WriteFault::Tear);
        // Before replay all three are visible — the writer had no idea.
        assert_eq!(kv.len(), 3);
        let stats = kv.replay().unwrap();
        assert_eq!(kv.len(), 1);
        assert!(kv.exists("kept"));
        assert!(stats.wal_torn_tail_bytes > 0);
        assert!(stats.damaged());
    }

    #[test]
    fn compaction_truncates_and_preserves_contents() {
        let log = DurableLog::new(Volume::in_memory(), LogConfig { snapshot_every: 3 });
        let kv = KvStore::durable(log);
        kv.set("a", vec![1]);
        kv.set("b", vec![2]);
        assert!(!kv.snapshot_due());
        kv.set("c", vec![3]);
        assert!(kv.snapshot_due());
        assert!(kv.compact(SnapshotFault::Clean));
        assert_eq!(kv.wal_stats().unwrap().wal_bytes, 0);
        kv.set("d", vec![4]);
        let stats = kv.replay().unwrap();
        assert_eq!(stats.snapshot_entries, 3);
        assert_eq!(stats.wal_records_applied, 1);
        assert_eq!(kv.len(), 4);
    }

    #[test]
    fn corrupt_snapshot_is_reported_on_replay() {
        let kv = KvStore::durable(DurableLog::in_memory());
        kv.set("pre", vec![1]);
        assert!(kv.compact(SnapshotFault::Corrupt));
        kv.set("post", vec![2]);
        let stats = kv.replay().unwrap();
        assert!(stats.snapshot_error.is_some());
        // The snapshot's contents are gone; the WAL tail survives.
        assert!(!kv.exists("pre"));
        assert!(kv.exists("post"));
    }
}
