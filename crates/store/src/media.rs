//! Storage media abstraction: where WAL and snapshot bytes actually live.
//!
//! The durability logic ([`crate::log`]) is written against the small
//! [`Media`] trait so the same code path serves two worlds:
//!
//! * [`MemMedia`] — an in-memory byte device for tests, benchmarks, and the
//!   default in-process cluster. Deterministic and infallible, it is the
//!   substrate the chaos suite tears and corrupts with byte precision.
//! * [`FileMedia`] — a real file under a data directory for the `texid`
//!   CLI and `texid serve --data DIR`. Appends go straight to the file;
//!   `replace` writes a temp file and renames it into place so a crashed
//!   snapshot write can never destroy the previous snapshot.
//!
//! A [`Volume`] bundles the two blobs one durable store needs (`store.wal`
//! and `store.snap`).

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An append-only byte blob with whole-blob read and atomic replace.
pub trait Media: Send + Sync {
    /// Read the entire blob.
    ///
    /// # Errors
    /// Transport errors from the underlying device (never for memory).
    fn read(&self) -> std::io::Result<Vec<u8>>;

    /// Append `bytes` at the end and make them durable.
    ///
    /// # Errors
    /// Transport errors from the underlying device (never for memory).
    fn append(&self, bytes: &[u8]) -> std::io::Result<()>;

    /// Atomically replace the whole blob with `bytes`.
    ///
    /// # Errors
    /// Transport errors from the underlying device (never for memory).
    fn replace(&self, bytes: &[u8]) -> std::io::Result<()>;

    /// Current blob length in bytes.
    fn len(&self) -> u64;

    /// True when the blob is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory [`Media`]: a plain byte vector behind a lock.
#[derive(Default)]
pub struct MemMedia {
    bytes: Mutex<Vec<u8>>,
}

impl MemMedia {
    /// An empty in-memory blob.
    pub fn new() -> MemMedia {
        MemMedia::default()
    }

    /// Flip bit `bit` of byte `offset` in place — the chaos suite's
    /// bit-rot primitive. Out-of-range offsets are ignored.
    pub fn flip_bit(&self, offset: usize, bit: u8) {
        let mut bytes = self.bytes.lock();
        if let Some(b) = bytes.get_mut(offset) {
            *b ^= 1 << (bit & 7);
        }
    }

    /// Truncate the blob to `len` bytes (tearing off the tail).
    pub fn truncate(&self, len: usize) {
        self.bytes.lock().truncate(len);
    }
}

impl Media for MemMedia {
    fn read(&self) -> std::io::Result<Vec<u8>> {
        Ok(self.bytes.lock().clone())
    }

    fn append(&self, bytes: &[u8]) -> std::io::Result<()> {
        self.bytes.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn replace(&self, bytes: &[u8]) -> std::io::Result<()> {
        *self.bytes.lock() = bytes.to_vec();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.bytes.lock().len() as u64
    }
}

/// File-backed [`Media`]: one blob per file path.
pub struct FileMedia {
    path: PathBuf,
    /// Serializes append/replace so interleaved writers cannot shear a
    /// record across each other.
    write: Mutex<()>,
}

impl FileMedia {
    /// Open (creating if absent) the blob at `path`.
    ///
    /// # Errors
    /// Propagates file creation failures.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<FileMedia> {
        let path = path.into();
        if !path.exists() {
            File::create(&path)?;
        }
        Ok(FileMedia { path, write: Mutex::new(()) })
    }

    /// The file path backing this blob.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Media for FileMedia {
    fn read(&self) -> std::io::Result<Vec<u8>> {
        let _guard = self.write.lock();
        let mut bytes = Vec::new();
        File::open(&self.path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn append(&self, bytes: &[u8]) -> std::io::Result<()> {
        let _guard = self.write.lock();
        let mut f = OpenOptions::new().append(true).open(&self.path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn replace(&self, bytes: &[u8]) -> std::io::Result<()> {
        let _guard = self.write.lock();
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)
    }

    fn len(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }
}

/// The pair of blobs one durable store needs: the WAL and the snapshot.
#[derive(Clone)]
pub struct Volume {
    /// Append-only record log.
    pub wal: Arc<dyn Media>,
    /// Last checksummed snapshot (whole-blob replaced at compaction).
    pub snapshot: Arc<dyn Media>,
}

impl Volume {
    /// An in-memory volume (the default for in-process clusters and tests).
    pub fn in_memory() -> Volume {
        Volume { wal: Arc::new(MemMedia::new()), snapshot: Arc::new(MemMedia::new()) }
    }

    /// A file-backed volume under `dir` (`store.wal` + `store.snap`),
    /// creating the directory if needed.
    ///
    /// # Errors
    /// Propagates directory/file creation failures.
    pub fn in_dir(dir: impl AsRef<Path>) -> std::io::Result<Volume> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        Ok(Volume {
            wal: Arc::new(FileMedia::open(dir.join("store.wal"))?),
            snapshot: Arc::new(FileMedia::open(dir.join("store.snap"))?),
        })
    }

    /// A volume over caller-supplied media — the chaos suite uses this to
    /// keep a concrete [`MemMedia`] handle it can tear and bit-flip while
    /// the store writes through the trait object.
    pub fn from_media(wal: Arc<dyn Media>, snapshot: Arc<dyn Media>) -> Volume {
        Volume { wal, snapshot }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_media_appends_and_replaces() {
        let m = MemMedia::new();
        assert!(m.is_empty());
        m.append(b"abc").unwrap();
        m.append(b"def").unwrap();
        assert_eq!(m.read().unwrap(), b"abcdef");
        assert_eq!(m.len(), 6);
        m.replace(b"xy").unwrap();
        assert_eq!(m.read().unwrap(), b"xy");
        m.truncate(1);
        assert_eq!(m.read().unwrap(), b"x");
        m.flip_bit(0, 0);
        assert_eq!(m.read().unwrap(), b"y");
        m.flip_bit(99, 0); // out of range: ignored
    }

    #[test]
    fn file_media_roundtrip() {
        let dir = std::env::temp_dir().join(format!("texid-store-test-{}", std::process::id()));
        let vol = Volume::in_dir(&dir).unwrap();
        vol.wal.append(b"hello ").unwrap();
        vol.wal.append(b"world").unwrap();
        assert_eq!(vol.wal.read().unwrap(), b"hello world");
        assert_eq!(vol.wal.len(), 11);
        vol.snapshot.replace(b"snap-1").unwrap();
        vol.snapshot.replace(b"snap-2").unwrap();
        assert_eq!(vol.snapshot.read().unwrap(), b"snap-2");
        // Reopening sees the same bytes.
        let again = Volume::in_dir(&dir).unwrap();
        assert_eq!(again.wal.read().unwrap(), b"hello world");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
