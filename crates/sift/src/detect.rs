//! DoG extrema detection, sub-pixel refinement and edge rejection.

use crate::keypoint::Keypoint;
use crate::pyramid::Pyramid;
use rayon::prelude::*;
use texid_image::GrayImage;

/// Detection thresholds.
#[derive(Clone, Copy, Debug)]
pub struct DetectParams {
    /// Minimum |DoG| at the refined extremum (Lowe's contrast threshold).
    pub contrast_threshold: f32,
    /// Maximum principal-curvature ratio `r` (Lowe uses 10): keypoints on
    /// edges with `tr²/det > (r+1)²/r` are rejected.
    pub edge_threshold: f32,
    /// Border margin (px, octave-local): extrema closer than this to the
    /// image edge are discarded — the paper's "edge feature removing".
    pub border: usize,
}

impl Default for DetectParams {
    fn default() -> Self {
        Self { contrast_threshold: 0.008, edge_threshold: 10.0, border: 5 }
    }
}

/// Is pixel `(x, y)` of `dogs[level]` a strict 26-neighbourhood extremum?
fn is_extremum(dogs: &[GrayImage], level: usize, x: usize, y: usize) -> bool {
    let v = dogs[level].get(x, y);
    // Early reject negligible responses before the 26 comparisons.
    if v.abs() < 1e-4 {
        return false;
    }
    let positive = v > 0.0;
    for (dl, im) in dogs[level - 1..=level + 1].iter().enumerate() {
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                if dl == 1 && dx == 0 && dy == 0 {
                    continue;
                }
                let n = im.get((x as isize + dx) as usize, (y as isize + dy) as usize);
                if positive {
                    if n >= v {
                        return false;
                    }
                } else if n <= v {
                    return false;
                }
            }
        }
    }
    true
}

/// Quadratic refinement result.
struct Refined {
    dx: f32,
    dy: f32,
    ds: f32,
    /// Interpolated |DoG| at the refined extremum.
    contrast: f32,
}

/// Fit a 3-D quadratic to the DoG neighbourhood and solve for the offset.
/// Returns `None` if the 3×3 Hessian is singular.
fn refine(dogs: &[GrayImage], level: usize, x: usize, y: usize) -> Option<Refined> {
    let d = |l: usize, xx: isize, yy: isize| -> f32 {
        dogs[l].get_clamped(x as isize + xx, y as isize + yy)
    };
    let v = d(level, 0, 0);

    // Gradient (first central differences).
    let gx = (d(level, 1, 0) - d(level, -1, 0)) * 0.5;
    let gy = (d(level, 0, 1) - d(level, 0, -1)) * 0.5;
    let gs = (d(level + 1, 0, 0) - d(level - 1, 0, 0)) * 0.5;

    // Hessian (second central differences).
    let hxx = d(level, 1, 0) + d(level, -1, 0) - 2.0 * v;
    let hyy = d(level, 0, 1) + d(level, 0, -1) - 2.0 * v;
    let hss = d(level + 1, 0, 0) + d(level - 1, 0, 0) - 2.0 * v;
    let hxy = (d(level, 1, 1) - d(level, -1, 1) - d(level, 1, -1) + d(level, -1, -1)) * 0.25;
    let hxs = (d(level + 1, 1, 0) - d(level + 1, -1, 0) - d(level - 1, 1, 0) + d(level - 1, -1, 0)) * 0.25;
    let hys = (d(level + 1, 0, 1) - d(level + 1, 0, -1) - d(level - 1, 0, 1) + d(level - 1, 0, -1)) * 0.25;

    // Solve H · δ = −g by Cramer's rule.
    let det = hxx * (hyy * hss - hys * hys) - hxy * (hxy * hss - hys * hxs)
        + hxs * (hxy * hys - hyy * hxs);
    if det.abs() < 1e-12 {
        return None;
    }
    let inv = 1.0 / det;
    let bx = -gx;
    let by = -gy;
    let bs = -gs;
    let dx = inv
        * (bx * (hyy * hss - hys * hys) - hxy * (by * hss - hys * bs)
            + hxs * (by * hys - hyy * bs));
    let dy = inv
        * (hxx * (by * hss - hys * bs) - bx * (hxy * hss - hys * hxs)
            + hxs * (hxy * bs - by * hxs));
    let ds = inv
        * (hxx * (hyy * bs - by * hys) - hxy * (hxy * bs - by * hxs)
            + bx * (hxy * hys - hyy * hxs));

    // Interpolated value: D(δ) = D + ½·gᵀδ.
    let contrast = v + 0.5 * (gx * dx + gy * dy + gs * ds);
    Some(Refined { dx, dy, ds, contrast: contrast.abs() })
}

/// Principal-curvature (edge) test on the 2-D Hessian.
fn passes_edge_test(dog: &GrayImage, x: usize, y: usize, edge_threshold: f32) -> bool {
    let d = |xx: isize, yy: isize| dog.get_clamped(x as isize + xx, y as isize + yy);
    let v = d(0, 0);
    let hxx = d(1, 0) + d(-1, 0) - 2.0 * v;
    let hyy = d(0, 1) + d(0, -1) - 2.0 * v;
    let hxy = (d(1, 1) - d(-1, 1) - d(1, -1) + d(-1, -1)) * 0.25;
    let tr = hxx + hyy;
    let det = hxx * hyy - hxy * hxy;
    if det <= 0.0 {
        return false; // saddle — curvature signs differ
    }
    let r = edge_threshold;
    tr * tr * r < (r + 1.0) * (r + 1.0) * det
}

/// Detect keypoints in every octave of `pyr`. Orientation is left at zero;
/// `orientation::assign_orientations` fills it in.
pub fn detect_keypoints(pyr: &Pyramid, params: &DetectParams) -> Vec<Keypoint> {
    let intervals = pyr.intervals;
    pyr.octaves
        .par_iter()
        .enumerate()
        .flat_map(|(o, oct)| {
            let mut found = Vec::new();
            let w = oct.dogs[0].width();
            let h = oct.dogs[0].height();
            let b = params.border.max(1);
            if w <= 2 * b || h <= 2 * b {
                return found;
            }
            for level in 1..=intervals {
                for y in b..h - b {
                    for x in b..w - b {
                        if !is_extremum(&oct.dogs, level, x, y) {
                            continue;
                        }
                        let Some(r) = refine(&oct.dogs, level, x, y) else {
                            continue;
                        };
                        // Reject unstable fits that want to move far away.
                        if r.dx.abs() > 0.6 || r.dy.abs() > 0.6 || r.ds.abs() > 0.6 {
                            continue;
                        }
                        if r.contrast < params.contrast_threshold {
                            continue;
                        }
                        if !passes_edge_test(&oct.dogs[level], x, y, params.edge_threshold) {
                            continue;
                        }
                        let oct_x = x as f32 + r.dx;
                        let oct_y = y as f32 + r.dy;
                        let interval = level as f32 + r.ds;
                        let scale_factor = pyr.octave_to_image_scale(o);
                        found.push(Keypoint {
                            x: oct_x * scale_factor,
                            y: oct_y * scale_factor,
                            sigma: pyr.abs_sigma(o, interval),
                            orientation: 0.0,
                            response: r.contrast,
                            octave: o,
                            interval,
                            oct_x,
                            oct_y,
                        });
                    }
                }
            }
            found
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use texid_image::{GrayImage, TextureGenerator};

    fn blob_image(cx: usize, cy: usize, sigma: f32) -> GrayImage {
        GrayImage::from_fn(96, 96, |x, y| {
            let dx = x as f32 - cx as f32;
            let dy = y as f32 - cy as f32;
            0.2 + 0.7 * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp()
        })
    }

    #[test]
    fn detects_an_isolated_blob_near_its_centre() {
        let im = blob_image(48, 48, 4.0);
        let pyr = Pyramid::build(&im, 3, 3, 1.6, 0.5);
        let kps = detect_keypoints(&pyr, &DetectParams::default());
        assert!(!kps.is_empty(), "no keypoints on a clean blob");
        let best = kps
            .iter()
            .max_by(|a, b| a.response.partial_cmp(&b.response).unwrap())
            .unwrap();
        assert!(
            (best.x - 48.0).abs() < 3.0 && (best.y - 48.0).abs() < 3.0,
            "strongest keypoint at ({}, {}) not at blob centre",
            best.x,
            best.y
        );
    }

    #[test]
    fn blob_scale_tracks_blob_size() {
        let small = blob_image(48, 48, 3.0);
        let large = blob_image(48, 48, 7.0);
        let find_scale = |im: &GrayImage| {
            let pyr = Pyramid::build(im, 4, 3, 1.6, 0.5);
            let kps = detect_keypoints(&pyr, &DetectParams::default());
            kps.iter()
                .max_by(|a, b| a.response.partial_cmp(&b.response).unwrap())
                .map(|k| k.sigma)
                .unwrap_or(0.0)
        };
        let s_small = find_scale(&small);
        let s_large = find_scale(&large);
        assert!(
            s_large > s_small,
            "scale selection failed: σ(small blob)={s_small}, σ(large blob)={s_large}"
        );
    }

    #[test]
    fn flat_image_has_no_keypoints() {
        let im = GrayImage::filled(96, 96, 0.5);
        let pyr = Pyramid::build(&im, 3, 3, 1.6, 0.5);
        assert!(detect_keypoints(&pyr, &DetectParams::default()).is_empty());
    }

    #[test]
    fn textures_yield_hundreds_of_keypoints() {
        // The paper extracts 768 features per image; our synthetic textures
        // must produce a comfortable surplus at 256².
        let im = TextureGenerator::with_size(256).generate(1);
        let pyr = Pyramid::build_upscaled(&im, 4, 3, 1.6, 0.5);
        let kps = detect_keypoints(&pyr, &DetectParams::default());
        assert!(kps.len() >= 800, "only {} keypoints detected", kps.len());
    }

    #[test]
    fn contrast_threshold_filters() {
        let im = TextureGenerator::with_size(128).generate(2);
        let pyr = Pyramid::build(&im, 3, 3, 1.6, 0.5);
        let loose = detect_keypoints(
            &pyr,
            &DetectParams { contrast_threshold: 0.004, ..Default::default() },
        );
        let strict = detect_keypoints(
            &pyr,
            &DetectParams { contrast_threshold: 0.04, ..Default::default() },
        );
        assert!(strict.len() < loose.len());
        for k in &strict {
            assert!(k.response >= 0.04);
        }
    }

    #[test]
    fn border_margin_respected() {
        let im = TextureGenerator::with_size(128).generate(3);
        let pyr = Pyramid::build(&im, 2, 3, 1.6, 0.5);
        let kps = detect_keypoints(
            &pyr,
            &DetectParams { border: 10, ..Default::default() },
        );
        for k in &kps {
            // Octave-local coordinates must honour the margin (±0.6 refine).
            assert!(k.oct_x >= 9.0 && k.oct_y >= 9.0, "{k:?}");
        }
    }

    #[test]
    fn straight_edge_is_rejected() {
        // A step edge produces strong DoG response but must fail the
        // curvature-ratio test.
        let im = GrayImage::from_fn(96, 96, |x, _| if x < 48 { 0.2 } else { 0.8 });
        let pyr = Pyramid::build(&im, 3, 3, 1.6, 0.5);
        let kps = detect_keypoints(&pyr, &DetectParams::default());
        // Any surviving keypoints must not sit on the x=48 edge line.
        for k in &kps {
            assert!(
                (k.x - 48.0).abs() > 2.0,
                "edge keypoint survived curvature test at x={}",
                k.x
            );
        }
    }
}
