//! Criterion micro-benchmarks of the *functional* substrates (real CPU wall
//! time, not simulated device time): GEMM, top-2 scan, FP16 conversion,
//! SIFT extraction and the wire codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use texid_distrib::wire;
use texid_image::TextureGenerator;
use texid_linalg::gemm::{gemm_at_b, gemm_at_b_f16, gemm_at_b_f16_flat, gemm_at_b_flat, gemm_at_b_naive};
use texid_linalg::kernel::{
    gemm_at_b_blocked_f16_on, gemm_at_b_blocked_on, gemm_top2_f16_on, gemm_top2_on,
};
use texid_linalg::top2::{sort_columns, top2_min_per_column};
use texid_linalg::{available_backends, F16, Mat};
use texid_sift::{extract, SiftConfig};

fn feature_mat(d: usize, cols: usize, seed: u64) -> Mat {
    let mut state = seed | 1;
    Mat::from_fn(d, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 40) & 0xffff) as f32 / 65535.0 * 0.1
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_at_b");
    for &cols in &[128usize, 384, 768] {
        let a = feature_mat(128, cols, 1);
        let b = feature_mat(128, 768, 2);
        let flops = 2 * cols as u64 * 768 * 128;
        g.throughput(Throughput::Elements(flops));
        g.bench_with_input(BenchmarkId::new("f32", cols), &cols, |bench, _| {
            bench.iter(|| gemm_at_b(-2.0, &a, &b))
        });
        let a16 = a.to_f16_scaled(0.0078125);
        let b16 = b.to_f16_scaled(0.0078125);
        g.bench_with_input(BenchmarkId::new("f16", cols), &cols, |bench, _| {
            bench.iter(|| gemm_at_b_f16(-2.0, &a16, &b16))
        });
    }
    g.finish();
}

/// Packed/blocked kernel (per SIMD backend) vs the flat loop it replaced
/// vs the naive triple loop, at the paper's pair-matching shape
/// (m = 768, n = 768, d = 128).
fn bench_gemm_packed(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_packed");
    let a = feature_mat(128, 768, 11);
    let b = feature_mat(128, 768, 12);
    let a16 = a.to_f16_scaled(0.0078125);
    let b16 = b.to_f16_scaled(0.0078125);
    g.throughput(Throughput::Elements(2 * 768 * 768 * 128));
    for be in available_backends() {
        g.bench_with_input(BenchmarkId::new("packed_f32", be.name()), &be, |bench, &be| {
            bench.iter(|| gemm_at_b_blocked_on(be, -2.0, &a, &b))
        });
        g.bench_with_input(BenchmarkId::new("packed_f16", be.name()), &be, |bench, &be| {
            bench.iter(|| gemm_at_b_blocked_f16_on(be, -2.0, &a16, &b16))
        });
    }
    g.bench_function("flat_f32", |bench| bench.iter(|| gemm_at_b_flat(-2.0, &a, &b)));
    g.bench_function("naive_f32", |bench| bench.iter(|| gemm_at_b_naive(-2.0, &a, &b)));
    g.bench_function("flat_f16", |bench| bench.iter(|| gemm_at_b_f16_flat(-2.0, &a16, &b16)));
    g.finish();
}

/// Fused GEMM+top-2 epilogue vs materialize-then-scan, same shape, per
/// SIMD backend.
fn bench_fused_top2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fused_top2");
    let a = feature_mat(128, 768, 13);
    let b = feature_mat(128, 768, 14);
    let a16 = a.to_f16_scaled(0.0078125);
    let b16 = b.to_f16_scaled(0.0078125);
    g.throughput(Throughput::Elements(2 * 768 * 768 * 128));
    for be in available_backends() {
        g.bench_with_input(BenchmarkId::new("fused_f32", be.name()), &be, |bench, &be| {
            bench.iter(|| gemm_top2_on(be, -2.0, &a, &b))
        });
        g.bench_with_input(BenchmarkId::new("unfused_f32", be.name()), &be, |bench, &be| {
            bench.iter(|| top2_min_per_column(&gemm_at_b_blocked_on(be, -2.0, &a, &b)))
        });
        g.bench_with_input(BenchmarkId::new("fused_f16", be.name()), &be, |bench, &be| {
            bench.iter(|| gemm_top2_f16_on(be, -2.0, &a16, &b16))
        });
        g.bench_with_input(BenchmarkId::new("unfused_f16", be.name()), &be, |bench, &be| {
            bench.iter(|| top2_min_per_column(&gemm_at_b_blocked_f16_on(be, -2.0, &a16, &b16)))
        });
    }
    g.finish();
}

fn bench_top2(c: &mut Criterion) {
    let mut g = c.benchmark_group("top2");
    let a = feature_mat(768, 768, 3);
    g.throughput(Throughput::Elements((768 * 768) as u64));
    g.bench_function("scan_768x768", |bench| bench.iter(|| top2_min_per_column(&a)));
    g.bench_function("full_sort_768x768", |bench| bench.iter(|| sort_columns(&a)));
    g.finish();
}

fn bench_f16(c: &mut Criterion) {
    let values: Vec<f32> = (0..65536).map(|i| i as f32 * 0.37 - 12_000.0).collect();
    let halves: Vec<F16> = values.iter().map(|&v| F16::from_f32(v)).collect();
    let mut g = c.benchmark_group("f16");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("narrow_64k", |bench| {
        bench.iter(|| values.iter().map(|&v| F16::from_f32(v)).collect::<Vec<_>>())
    });
    g.bench_function("widen_64k", |bench| {
        bench.iter(|| halves.iter().map(|h| h.to_f32()).collect::<Vec<f32>>())
    });
    // The vectorized slice converters, per backend (the packing/epilogue
    // paths the GEMM kernels actually use).
    for be in available_backends() {
        g.bench_with_input(BenchmarkId::new("narrow_slice_64k", be.name()), &be, |bench, &be| {
            let mut out = vec![F16::ZERO; values.len()];
            bench.iter(|| texid_linalg::f16::narrow_slice_scaled_on(be, &values, 1.0, &mut out))
        });
        g.bench_with_input(BenchmarkId::new("widen_slice_64k", be.name()), &be, |bench, &be| {
            let mut out = vec![0.0f32; halves.len()];
            bench.iter(|| texid_linalg::f16::widen_slice_on(be, &halves, &mut out))
        });
    }
    g.finish();
}

fn bench_sift(c: &mut Criterion) {
    let im = TextureGenerator::with_size(256).generate(5);
    let cfg = SiftConfig { max_features: 768, ..SiftConfig::default() };
    let mut g = c.benchmark_group("sift");
    g.sample_size(10);
    g.bench_function("extract_256px_768f", |bench| bench.iter(|| extract(&im, &cfg)));
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let im = TextureGenerator::with_size(256).generate(6);
    let features = extract(&im, &SiftConfig { max_features: 384, ..SiftConfig::default() });
    let encoded = wire::encode_features(&features);
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_384f", |bench| bench.iter(|| wire::encode_features(&features)));
    g.bench_function("decode_384f", |bench| {
        bench.iter(|| wire::decode_features(&encoded).expect("valid"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_gemm_packed,
    bench_fused_top2,
    bench_top2,
    bench_f16,
    bench_sift,
    bench_wire
);
criterion_main!(benches);
