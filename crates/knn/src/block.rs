//! Precision-tagged feature blocks.
//!
//! A [`FeatureBlock`] is one reference feature matrix (or a batched
//! concatenation of several) in whatever precision the engine is configured
//! for. FP16 blocks remember the scale factor applied before narrowing
//! (§4.2) so matching can undo `scale²` after the GEMM.

use texid_linalg::{Mat, MatF16};

/// A feature matrix in storage precision.
#[derive(Clone, Debug)]
pub enum FeatureBlock {
    /// Full-precision storage.
    F32(Mat),
    /// Half-precision storage; `scale` was multiplied in before narrowing.
    F16 {
        /// The narrowed matrix (values are `original · scale`).
        mat: MatF16,
        /// The paper's overflow-avoiding scale factor (2⁻⁷ in practice).
        scale: f32,
    },
}

impl FeatureBlock {
    /// Narrow an f32 feature matrix into the requested precision.
    pub fn from_mat(mat: Mat, precision: texid_gpu::Precision, scale: f32) -> FeatureBlock {
        match precision {
            texid_gpu::Precision::F32 => FeatureBlock::F32(mat),
            texid_gpu::Precision::F16 => {
                FeatureBlock::F16 { mat: mat.to_f16_scaled(scale), scale }
            }
        }
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        match self {
            FeatureBlock::F32(m) => m.cols(),
            FeatureBlock::F16 { mat, .. } => mat.cols(),
        }
    }

    /// Descriptor dimensionality.
    pub fn rows(&self) -> usize {
        match self {
            FeatureBlock::F32(m) => m.rows(),
            FeatureBlock::F16 { mat, .. } => mat.rows(),
        }
    }

    /// Payload bytes in storage precision.
    pub fn size_bytes(&self) -> usize {
        match self {
            FeatureBlock::F32(m) => m.size_bytes(),
            FeatureBlock::F16 { mat, .. } => mat.size_bytes(),
        }
    }

    /// Storage precision.
    pub fn precision(&self) -> texid_gpu::Precision {
        match self {
            FeatureBlock::F32(_) => texid_gpu::Precision::F32,
            FeatureBlock::F16 { .. } => texid_gpu::Precision::F16,
        }
    }

    /// Concatenate blocks of identical precision/scale column-wise
    /// (the paper's reference batching).
    ///
    /// # Panics
    /// Panics on empty input or mixed precisions/scales.
    pub fn hconcat(blocks: &[&FeatureBlock]) -> FeatureBlock {
        assert!(!blocks.is_empty(), "hconcat of zero blocks");
        match blocks[0] {
            FeatureBlock::F32(_) => {
                let mats: Vec<&Mat> = blocks
                    .iter()
                    .map(|b| match b {
                        FeatureBlock::F32(m) => m,
                        _ => panic!("mixed precisions in hconcat"),
                    })
                    .collect();
                FeatureBlock::F32(Mat::hconcat(&mats))
            }
            FeatureBlock::F16 { scale, .. } => {
                let s0 = *scale;
                let mats: Vec<&MatF16> = blocks
                    .iter()
                    .map(|b| match b {
                        FeatureBlock::F16 { mat, scale } if *scale == s0 => mat,
                        FeatureBlock::F16 { .. } => panic!("mixed scales in hconcat"),
                        _ => panic!("mixed precisions in hconcat"),
                    })
                    .collect();
                FeatureBlock::F16 { mat: MatF16::hconcat(&mats), scale: s0 }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use texid_gpu::Precision;

    fn sample(cols: usize) -> Mat {
        Mat::from_fn(4, cols, |r, c| (r + c) as f32 * 0.1)
    }

    #[test]
    fn f32_roundtrip_properties() {
        let b = FeatureBlock::from_mat(sample(3), Precision::F32, 1.0);
        assert_eq!(b.cols(), 3);
        assert_eq!(b.rows(), 4);
        assert_eq!(b.size_bytes(), 48);
        assert_eq!(b.precision(), Precision::F32);
    }

    #[test]
    fn f16_halves_bytes() {
        let b = FeatureBlock::from_mat(sample(3), Precision::F16, 0.0078125);
        assert_eq!(b.size_bytes(), 24);
        assert_eq!(b.precision(), Precision::F16);
    }

    #[test]
    fn hconcat_f32() {
        let a = FeatureBlock::from_mat(sample(2), Precision::F32, 1.0);
        let b = FeatureBlock::from_mat(sample(3), Precision::F32, 1.0);
        let cat = FeatureBlock::hconcat(&[&a, &b]);
        assert_eq!(cat.cols(), 5);
    }

    #[test]
    fn hconcat_f16_same_scale() {
        let s = 2.0_f32.powi(-7);
        let a = FeatureBlock::from_mat(sample(2), Precision::F16, s);
        let b = FeatureBlock::from_mat(sample(1), Precision::F16, s);
        let cat = FeatureBlock::hconcat(&[&a, &b]);
        assert_eq!(cat.cols(), 3);
        assert_eq!(cat.precision(), Precision::F16);
    }

    #[test]
    #[should_panic(expected = "mixed precisions")]
    fn hconcat_rejects_mixed() {
        let a = FeatureBlock::from_mat(sample(2), Precision::F32, 1.0);
        let b = FeatureBlock::from_mat(sample(1), Precision::F16, 1.0);
        let _ = FeatureBlock::hconcat(&[&a, &b]);
    }
}
