//! Capture-condition augmentations — simulating the paper's query images.
//!
//! Queries in the tea-brick dataset are the *same physical bricks* re-imaged
//! by customers with smartphones: different viewpoint, illumination,
//! occlusion, focus, and sensor noise. [`CaptureCondition`] models one such
//! re-capture as an inverse-mapped affine warp plus photometric distortions,
//! applied to a reference texture to synthesize its matching query.

use crate::gray::GrayImage;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One simulated re-capture of a texture.
#[derive(Clone, Debug)]
pub struct CaptureCondition {
    /// In-plane rotation (degrees).
    pub rotation_deg: f32,
    /// Uniform zoom factor (1.0 = same distance).
    pub scale: f32,
    /// Translation in pixels (camera aim offset).
    pub translate: (f32, f32),
    /// Multiplicative illumination gain.
    pub gain: f32,
    /// Additive illumination bias.
    pub bias: f32,
    /// Std-dev of additive Gaussian sensor noise (0 disables).
    pub noise_sigma: f32,
    /// Defocus blur sigma (0 disables).
    pub blur_sigma: f32,
    /// Occluding rectangle `(x, y, w, h)` in pixels, filled with mid-gray.
    pub occlusion: Option<(usize, usize, usize, usize)>,
    /// Specular glare spots (count, seed): bright Gaussian blobs from a
    /// phone flash reflecting off the compressed surface. Glare produces
    /// strong *spurious* keypoints that crowd the top-n response ranking —
    /// the reason query-side feature budgets matter (Table 7).
    pub glare: Option<(usize, u64)>,
    /// Out-of-plane camera tilt: the perspective row `(g, h)` of the
    /// inverse (output→source) mapping, applied about the image centre.
    /// Magnitudes around 1e-3 give a visible keystone; this is the
    /// distortion only a homography (not a similarity/affine) can verify.
    pub perspective: Option<(f32, f32)>,
}

impl Default for CaptureCondition {
    fn default() -> Self {
        Self::identity()
    }
}

impl CaptureCondition {
    /// No-op capture (query pixel-identical to the reference).
    pub fn identity() -> Self {
        Self {
            rotation_deg: 0.0,
            scale: 1.0,
            translate: (0.0, 0.0),
            gain: 1.0,
            bias: 0.0,
            noise_sigma: 0.0,
            blur_sigma: 0.0,
            occlusion: None,
            glare: None,
            perspective: None,
        }
    }

    /// A gentle smartphone re-capture: small rotation/zoom, mild lighting
    /// shift, light sensor noise.
    pub fn mild(rng: &mut SmallRng) -> Self {
        Self {
            rotation_deg: rng.gen_range(-6.0..6.0),
            scale: rng.gen_range(0.95..1.05),
            translate: (rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)),
            gain: rng.gen_range(0.9..1.1),
            bias: rng.gen_range(-0.05..0.05),
            noise_sigma: rng.gen_range(0.0..0.01),
            blur_sigma: 0.0,
            occlusion: None,
            glare: None,
            perspective: None,
        }
    }

    /// A harder capture: more viewpoint change, defocus, possible occlusion.
    pub fn moderate(rng: &mut SmallRng) -> Self {
        let occl = if rng.gen_bool(0.3) {
            let w = rng.gen_range(16..40usize);
            let h = rng.gen_range(16..40usize);
            Some((rng.gen_range(0..128usize), rng.gen_range(0..128usize), w, h))
        } else {
            None
        };
        Self {
            rotation_deg: rng.gen_range(-15.0..15.0),
            scale: rng.gen_range(0.88..1.12),
            translate: (rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)),
            gain: rng.gen_range(0.8..1.2),
            bias: rng.gen_range(-0.1..0.1),
            noise_sigma: rng.gen_range(0.005..0.02),
            blur_sigma: if rng.gen_bool(0.4) { rng.gen_range(0.4..0.9) } else { 0.0 },
            occlusion: occl,
            glare: if rng.gen_bool(0.3) { Some((rng.gen_range(2..5), rng.gen())) } else { None },
            perspective: None,
        }
    }

    /// A harsh capture: strong viewpoint change, guaranteed occlusion,
    /// defocus and heavy sensor noise — the regime where feature budgets
    /// (the paper's m/n) start to matter.
    pub fn severe(rng: &mut SmallRng) -> Self {
        let w = rng.gen_range(90..150usize);
        let h = rng.gen_range(90..150usize);
        Self {
            rotation_deg: rng.gen_range(-40.0..40.0),
            scale: rng.gen_range(0.65..1.45),
            translate: (rng.gen_range(-28.0..28.0), rng.gen_range(-28.0..28.0)),
            gain: rng.gen_range(0.55..1.4),
            bias: rng.gen_range(-0.18..0.18),
            noise_sigma: rng.gen_range(0.06..0.12),
            blur_sigma: rng.gen_range(0.8..1.6),
            occlusion: Some((rng.gen_range(0..150usize), rng.gen_range(0..150usize), w, h)),
            glare: Some((rng.gen_range(10..22), rng.gen())),
            // Perspective tilt is an explicit, opt-in capture factor (see
            // the homography verification tests); the preset samplers keep
            // planar captures so the accuracy experiments stay comparable.
            perspective: None,
        }
    }

    /// Apply the capture to `reference`, producing the simulated query image.
    ///
    /// `noise_seed` makes the stochastic parts (sensor noise) reproducible.
    pub fn apply(&self, reference: &GrayImage, noise_seed: u64) -> GrayImage {
        let w = reference.width();
        let h = reference.height();
        let cx = w as f32 / 2.0;
        let cy = h as f32 / 2.0;
        let theta = self.rotation_deg.to_radians();
        let (s, c) = theta.sin_cos();
        // Inverse map: output pixel -> source coordinate (rotate by −θ,
        // scale by 1/zoom, shift by −t), all about the image centre.
        let inv_scale = 1.0 / self.scale;
        let (pg, ph) = self.perspective.unwrap_or((0.0, 0.0));
        let mut out = GrayImage::from_fn(w, h, |x, y| {
            let dx = x as f32 - cx - self.translate.0;
            let dy = y as f32 - cy - self.translate.1;
            // Perspective divide of the inverse map (identity when untilted).
            let denom = 1.0 + pg * dx + ph * dy;
            let (dx, dy) = if denom.abs() > 1e-6 { (dx / denom, dy / denom) } else { (dx, dy) };
            let sx = (c * dx + s * dy) * inv_scale + cx;
            let sy = (-s * dx + c * dy) * inv_scale + cy;
            reference.sample_bilinear(sx, sy)
        });

        // Photometric distortion.
        for v in out.as_mut_slice() {
            *v = *v * self.gain + self.bias;
        }

        if self.blur_sigma > 0.0 {
            out = crate::filter::gaussian_blur(&out, self.blur_sigma);
        }

        if self.noise_sigma > 0.0 {
            let mut rng = SmallRng::seed_from_u64(noise_seed);
            for v in out.as_mut_slice() {
                // Box–Muller keeps us off rand_distr.
                let u1: f32 = rng.gen_range(1e-7..1.0f32);
                let u2: f32 = rng.gen_range(0.0..1.0f32);
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f32::consts::PI * u2).cos();
                *v += g * self.noise_sigma;
            }
        }

        if let Some((count, seed)) = self.glare {
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..count {
                let cx: f32 = rng.gen_range(0.0..w as f32);
                let cy: f32 = rng.gen_range(0.0..h as f32);
                let radius: f32 = rng.gen_range(3.0..10.0);
                let strength: f32 = rng.gen_range(0.35..0.7);
                let r = (3.0 * radius) as isize;
                let denom = 2.0 * radius * radius;
                for dy in -r..=r {
                    for dx in -r..=r {
                        let px = cx as isize + dx;
                        let py = cy as isize + dy;
                        if px < 0 || py < 0 || px >= w as isize || py >= h as isize {
                            continue;
                        }
                        let fx = px as f32 - cx;
                        let fy = py as f32 - cy;
                        let bump = strength * (-(fx * fx + fy * fy) / denom).exp();
                        let old = out.get(px as usize, py as usize);
                        out.set(px as usize, py as usize, old + bump);
                    }
                }
            }
        }

        if let Some((ox, oy, ow, oh)) = self.occlusion {
            for y in oy..(oy + oh).min(h) {
                for x in ox..(ox + ow).min(w) {
                    out.set(x, y, 0.5);
                }
            }
        }

        out.clamp01();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TextureGenerator;

    fn reference() -> GrayImage {
        TextureGenerator::with_size(96).generate(11)
    }

    #[test]
    fn identity_is_noop() {
        let im = reference();
        let q = CaptureCondition::identity().apply(&im, 0);
        let max_diff = im
            .as_slice()
            .iter()
            .zip(q.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-5, "identity warp changed pixels: {max_diff}");
    }

    #[test]
    fn rotation_moves_pixels_but_preserves_statistics() {
        let im = reference();
        let cond = CaptureCondition { rotation_deg: 10.0, ..CaptureCondition::identity() };
        let q = cond.apply(&im, 0);
        assert_ne!(im, q);
        // Texture statistics survive a small rotation.
        assert!((im.mean() - q.mean()).abs() < 0.05);
    }

    #[test]
    fn gain_bias_shift_mean() {
        let im = reference();
        let cond = CaptureCondition { gain: 1.0, bias: 0.1, ..CaptureCondition::identity() };
        let q = cond.apply(&im, 0);
        assert!(q.mean() > im.mean() + 0.05);
    }

    #[test]
    fn noise_is_reproducible_per_seed() {
        let im = reference();
        let cond = CaptureCondition { noise_sigma: 0.02, ..CaptureCondition::identity() };
        assert_eq!(cond.apply(&im, 5), cond.apply(&im, 5));
        assert_ne!(cond.apply(&im, 5), cond.apply(&im, 6));
    }

    #[test]
    fn occlusion_fills_rectangle() {
        let im = reference();
        let cond = CaptureCondition {
            occlusion: Some((10, 10, 20, 20)),
            ..CaptureCondition::identity()
        };
        let q = cond.apply(&im, 0);
        assert_eq!(q.get(15, 15), 0.5);
        assert_eq!(q.get(29, 29), 0.5);
    }

    #[test]
    fn output_stays_in_unit_range() {
        let im = reference();
        let mut rng = SmallRng::seed_from_u64(3);
        for i in 0..5 {
            let cond = CaptureCondition::moderate(&mut rng);
            let q = cond.apply(&im, i);
            assert!(q.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn severe_always_occludes_and_blurs() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..20 {
            let c = CaptureCondition::severe(&mut rng);
            assert!(c.occlusion.is_some());
            assert!(c.blur_sigma > 0.0);
            assert!(c.noise_sigma >= 0.02);
            assert!(c.glare.is_some());
        }
    }

    #[test]
    fn perspective_keystones_the_image() {
        let im = reference();
        let cond = CaptureCondition {
            perspective: Some((2e-3, 0.0)),
            ..CaptureCondition::identity()
        };
        let q = cond.apply(&im, 0);
        assert_ne!(im, q);
        // The centre pixel is a fixed point of the pure-perspective map.
        let c = im.width() / 2;
        assert!((q.get(c, c) - im.get(c, c)).abs() < 0.05);
    }

    #[test]
    fn glare_brightens_locally() {
        let im = reference();
        let cond = CaptureCondition { glare: Some((8, 3)), ..CaptureCondition::identity() };
        let q = cond.apply(&im, 0);
        assert!(q.mean() > im.mean(), "glare must add light");
        let max_diff = im
            .as_slice()
            .iter()
            .zip(q.as_slice())
            .map(|(a, b)| (b - a).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff > 0.2, "glare too weak: {max_diff}");
    }

    #[test]
    fn mild_sampler_within_documented_ranges() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let c = CaptureCondition::mild(&mut rng);
            assert!(c.rotation_deg.abs() <= 6.0);
            assert!((0.95..=1.05).contains(&c.scale));
            assert!(c.occlusion.is_none());
        }
    }
}
