//! Quickstart: index a handful of textures, search with a re-captured
//! query, identify the product.
//!
//! ```sh
//! cargo run --release -p texid-apps --example quickstart
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use texid_core::{Engine, EngineConfig};
use texid_image::{CaptureCondition, TextureGenerator};
use texid_sift::{extract, SiftConfig};

fn main() {
    // 1. A texture "factory": deterministic procedural tea-brick surfaces.
    //    (In production these would be photos from the manufacturing line.)
    let factory = TextureGenerator::with_size(256);

    // 2. Bring up a search engine — one simulated Tesla P100 with the
    //    paper's optimal configuration (RootSIFT + FP16 + batching +
    //    hybrid cache + asymmetric m=384/n=768).
    let mut engine = Engine::new(EngineConfig::default());

    // 3. Enroll 12 products: extract reference features (top-384) and index.
    println!("enrolling 12 reference textures ...");
    let ref_cfg = SiftConfig::reference(384);
    for id in 0..12u64 {
        let image = factory.generate(id);
        let features = extract(&image, &ref_cfg);
        engine.add_reference(id, &features).expect("cache has room");
    }
    engine.flush().expect("seal final batch");

    // 4. A customer re-photographs product #7 with their phone: different
    //    angle, lighting and sensor noise.
    let mut rng = SmallRng::seed_from_u64(42);
    let capture = CaptureCondition::mild(&mut rng);
    let query_image = capture.apply(&factory.generate(7), 7);
    let query = extract(&query_image, &SiftConfig::query(768));
    println!(
        "query capture: rotation {:.1} deg, zoom {:.2}, {} features extracted",
        capture.rotation_deg,
        capture.scale,
        query.len()
    );

    // 5. Search.
    let result = engine.search(&query);
    println!("\nranked results (good-match score per reference):");
    for (id, score) in result.ranked.iter().take(5) {
        println!("  texture {id:>3}  score {score}");
    }
    match result.best(10) {
        Some((id, score)) => println!("\nIDENTIFIED: texture {id} with {score} matching keypoints"),
        None => println!("\nno confident match"),
    }
    println!(
        "simulated device time: {:.1} ms ({} comparisons/s on a {})",
        result.report.total_us / 1e3,
        result.report.images_per_second().round(),
        engine.config().device.name,
    );
    assert_eq!(result.ranked[0].0, 7, "quickstart must identify texture 7");
}
