//! Kernel micro-benchmark report: packed/blocked GEMM vs the flat and naive
//! baselines, fused vs unfused top-2, in f32 and f16, at the paper's
//! matching shapes (m ∈ {384, 768} reference features, n = 768 query
//! features, d = 128 descriptors, reference batches B ∈ {1, 8, 32}) — each
//! timed kernel measured once per available SIMD backend (scalar always,
//! plus avx2/neon where the host supports them).
//!
//! Unlike the Criterion benches this emits a machine-readable JSON file
//! (`BENCH_kernels.json`) with a stable schema, so CI can smoke-test the
//! kernels ([`check_guard`], [`check_simd_guard`]) and the repo can track
//! GFLOP/s over time. Inputs are seeded and timings are median-of-N after a
//! warmup run, so the report is as deterministic as wall-clock measurement
//! allows.

use std::hint::black_box;
use std::time::Instant;

use texid_linalg::dispatch::{available_backends, Backend};
use texid_linalg::gemm::{gemm_at_b_f16_flat, gemm_at_b_flat, gemm_at_b_naive};
use texid_linalg::kernel::{
    gemm_at_b_blocked_f16_on, gemm_at_b_blocked_on, gemm_top2_blocked_f16_on,
    gemm_top2_blocked_on,
};
use texid_linalg::mat::Mat;
use texid_linalg::top2::top2_min_per_column_blocked;

/// Schema tag stamped into every report; bump on any layout change.
/// v2 added the per-entry `backend` column (SIMD dispatch rows).
pub const SCHEMA: &str = "texid-kernel-bench/v2";

/// Seed for the generated feature matrices.
pub const SEED: u64 = 0x5eed_7e71;

/// One timed kernel × backend × shape measurement.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Kernel identity: `packed`, `flat`, `naive`, `fused_top2`,
    /// `unfused_top2`.
    pub kernel: &'static str,
    /// `f32` or `f16`.
    pub precision: &'static str,
    /// Kernel backend the row was measured on (`scalar`, `avx2`, `neon`).
    /// The flat/naive baselines have no SIMD path and always say `scalar`.
    pub backend: &'static str,
    /// Reference features per batch block.
    pub m: usize,
    /// Query features.
    pub n: usize,
    /// Descriptor dimension.
    pub d: usize,
    /// Reference blocks batched into one GEMM.
    pub batch: usize,
    /// Median wall time, microseconds.
    pub wall_us: f64,
    /// `2·(B·m)·n·d` FLOPs over the median wall time.
    pub gflops: f64,
}

/// A full benchmark run.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Input seed (fixed: [`SEED`]).
    pub seed: u64,
    /// Samples per measurement (median taken).
    pub median_of: usize,
    /// True when the reduced quick shape set was used.
    pub quick: bool,
    /// All measurements.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serialize with a stable key order (hand-rolled: the workspace
    /// vendors no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"median_of\": {},\n", self.median_of));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"precision\": \"{}\", \"backend\": \"{}\", \
                 \"m\": {}, \"n\": {}, \"d\": {}, \"batch\": {}, \"wall_us\": {:.2}, \
                 \"gflops\": {:.4}}}{}\n",
                e.kernel,
                e.precision,
                e.backend,
                e.m,
                e.n,
                e.d,
                e.batch,
                e.wall_us,
                e.gflops,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The entry for `(kernel, precision)` at the largest `(batch·m)` shape
    /// it was measured at, over any backend (ties prefer later entries,
    /// i.e. SIMD rows, which are pushed after scalar).
    pub fn largest(&self, kernel: &str, precision: &str) -> Option<&BenchEntry> {
        self.entries
            .iter()
            .filter(|e| e.kernel == kernel && e.precision == precision)
            .max_by_key(|e| (e.batch * e.m, e.n))
    }

    /// [`BenchReport::largest`] restricted to one backend's rows.
    pub fn largest_on(
        &self,
        kernel: &str,
        precision: &str,
        backend: &str,
    ) -> Option<&BenchEntry> {
        self.entries
            .iter()
            .filter(|e| e.kernel == kernel && e.precision == precision && e.backend == backend)
            .max_by_key(|e| (e.batch * e.m, e.n))
    }
}

/// Structural validation of an emitted report: balanced JSON nesting, the
/// exact schema tag, and the full column set on every entry.
pub fn validate_json(json: &str) -> Result<(), String> {
    let mut depth_obj = 0i32;
    let mut depth_arr = 0i32;
    let mut in_str = false;
    let mut esc = false;
    for ch in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match ch {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' if !in_str => depth_obj += 1,
            '}' if !in_str => depth_obj -= 1,
            '[' if !in_str => depth_arr += 1,
            ']' if !in_str => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err("unbalanced JSON nesting".into());
        }
    }
    if depth_obj != 0 || depth_arr != 0 || in_str {
        return Err("unterminated JSON".into());
    }
    if !json.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing schema tag {SCHEMA:?}"));
    }
    for key in ["\"seed\":", "\"median_of\":", "\"quick\":", "\"entries\":"] {
        if !json.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    let n_entries = json.matches("\"kernel\":").count();
    if n_entries == 0 {
        return Err("no entries".into());
    }
    for key in [
        "\"precision\":",
        "\"backend\":",
        "\"m\":",
        "\"n\":",
        "\"d\":",
        "\"batch\":",
        "\"wall_us\":",
        "\"gflops\":",
    ] {
        if json.matches(key).count() != n_entries {
            return Err(format!("key {key} missing from some entry"));
        }
    }
    Ok(())
}

/// Regression guard: at the largest measured shape, the **scalar** packed
/// kernel must reach at least `min_ratio ×` the flat baseline's GFLOP/s,
/// per precision. Pinned to the scalar rows so a fast SIMD backend can
/// never mask a scalar-kernel regression.
pub fn check_guard(report: &BenchReport, min_ratio: f64) -> Result<(), String> {
    for precision in ["f32", "f16"] {
        let packed = report
            .largest_on("packed", precision, "scalar")
            .ok_or_else(|| format!("no scalar packed {precision} entry"))?;
        // The flat baseline only runs at batch = 1; compare at its own
        // largest shape (same m, n, d — GFLOP/s normalizes the batch away).
        let flat = report
            .largest_on("flat", precision, "scalar")
            .ok_or_else(|| format!("no flat {precision} entry"))?;
        let ratio = packed.gflops / flat.gflops;
        if ratio < min_ratio {
            return Err(format!(
                "packed {precision} at m={} B={} reaches only {ratio:.2}x of flat \
                 ({:.2} vs {:.2} GFLOP/s, floor {min_ratio}x)",
                packed.m, packed.batch, packed.gflops, flat.gflops
            ));
        }
    }
    Ok(())
}

/// SIMD dispatch guard: every non-scalar row must reach at least
/// `min_ratio ×` the matching scalar row's GFLOP/s (same kernel, precision,
/// and shape). With `min_ratio = 1.0` this asserts SIMD dispatch never
/// *loses* to scalar anywhere it was measured — the cheapest possible
/// "the intrinsics are actually wired up" smoke check. A report with no
/// SIMD rows (scalar-only host, or a forced-backend run) passes vacuously;
/// a SIMD row without its scalar twin is an error.
pub fn check_simd_guard(report: &BenchReport, min_ratio: f64) -> Result<(), String> {
    for e in report.entries.iter().filter(|e| e.backend != "scalar") {
        let scalar = report
            .entries
            .iter()
            .find(|s| {
                s.backend == "scalar"
                    && s.kernel == e.kernel
                    && s.precision == e.precision
                    && (s.m, s.n, s.d, s.batch) == (e.m, e.n, e.d, e.batch)
            })
            .ok_or_else(|| {
                format!(
                    "no scalar twin for {} {} m={} B={} ({})",
                    e.kernel, e.precision, e.m, e.batch, e.backend
                )
            })?;
        let ratio = e.gflops / scalar.gflops;
        if ratio < min_ratio {
            return Err(format!(
                "{} {} {} at m={} B={} reaches only {ratio:.2}x of scalar \
                 ({:.2} vs {:.2} GFLOP/s, floor {min_ratio}x)",
                e.backend, e.kernel, e.precision, e.m, e.batch, e.gflops, scalar.gflops
            ));
        }
    }
    Ok(())
}

/// Seeded pseudo-random feature matrix (values in `[0, 0.1)`, the scale of
/// unit-norm RootSIFT descriptors).
fn feature_mat(d: usize, cols: usize, seed: u64) -> Mat {
    let mut state = seed | 1;
    Mat::from_fn(d, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 40) & 0xffff) as f32 / 65535.0 * 0.1
    })
}

/// Median wall time of `median_of` timed runs after one warmup run, µs.
fn time_median_us<R>(median_of: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..median_of)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Run the kernel benchmarks at the paper's matching shapes, on every
/// backend available on this host.
///
/// `quick` keeps only the largest pair shape at batch 1 with median-of-3
/// timing (the CI smoke configuration); the full run sweeps
/// m ∈ {384, 768} × B ∈ {1, 8, 32} with median-of-5.
pub fn run(quick: bool) -> BenchReport {
    run_on(quick, &available_backends())
}

/// [`run`] restricted to an explicit backend set (the CLI's `--backend`
/// knob). Shapes and repetition counts are identical to [`run`].
pub fn run_on(quick: bool, backends: &[Backend]) -> BenchReport {
    if quick {
        run_custom(&[768], &[1], 768, 128, 3, true, backends)
    } else {
        run_custom(&[384, 768], &[1, 8, 32], 768, 128, 5, false, backends)
    }
}

/// [`run`] with explicit shapes and backends — lets tests exercise the
/// full measurement and serialization path in milliseconds, and lets the
/// CLI force a single backend.
pub fn run_custom(
    ms: &[usize],
    batches: &[usize],
    n: usize,
    d: usize,
    median_of: usize,
    quick: bool,
    backends: &[Backend],
) -> BenchReport {
    let mut entries = Vec::new();
    let q = feature_mat(d, n, SEED ^ 0x9e37);
    let q16 = q.to_f16_scaled(0.0078125);

    for &m in ms {
        for &batch in batches {
            let r = feature_mat(d, batch * m, SEED.wrapping_add(m as u64));
            let r16 = r.to_f16_scaled(0.0078125);
            let flops = 2.0 * (batch * m) as f64 * n as f64 * d as f64;
            let mut push =
                |kernel: &'static str, precision: &'static str, be: &'static str, wall_us: f64| {
                    entries.push(BenchEntry {
                        kernel,
                        precision,
                        backend: be,
                        m,
                        n,
                        d,
                        batch,
                        wall_us,
                        gflops: flops / wall_us / 1e3,
                    });
                };

            // The packed/blocked GEMM and its fused top-2 form, once per
            // requested backend (all bit-identical; only speed differs).
            for &be in backends {
                let name = be.name();
                push(
                    "packed",
                    "f32",
                    name,
                    time_median_us(median_of, || gemm_at_b_blocked_on(be, -2.0, &r, &q)),
                );
                push(
                    "packed",
                    "f16",
                    name,
                    time_median_us(median_of, || gemm_at_b_blocked_f16_on(be, -2.0, &r16, &q16)),
                );
                push(
                    "fused_top2",
                    "f32",
                    name,
                    time_median_us(median_of, || gemm_top2_blocked_on(be, -2.0, &r, &q, batch, m)),
                );
                push(
                    "fused_top2",
                    "f16",
                    name,
                    time_median_us(median_of, || {
                        gemm_top2_blocked_f16_on(be, -2.0, &r16, &q16, batch, m)
                    }),
                );
                push(
                    "unfused_top2",
                    "f32",
                    name,
                    time_median_us(median_of, || {
                        top2_min_per_column_blocked(
                            &gemm_at_b_blocked_on(be, -2.0, &r, &q),
                            batch,
                            m,
                        )
                    }),
                );
                push(
                    "unfused_top2",
                    "f16",
                    name,
                    time_median_us(median_of, || {
                        top2_min_per_column_blocked(
                            &gemm_at_b_blocked_f16_on(be, -2.0, &r16, &q16),
                            batch,
                            m,
                        )
                    }),
                );
            }

            // Baselines are slow (the f16 flat kernel re-widens per output
            // column) and have no SIMD path; only time them unbatched,
            // where one run is cheap.
            if batch == 1 {
                push(
                    "flat",
                    "f32",
                    "scalar",
                    time_median_us(median_of, || gemm_at_b_flat(-2.0, &r, &q)),
                );
                push(
                    "flat",
                    "f16",
                    "scalar",
                    time_median_us(median_of, || gemm_at_b_f16_flat(-2.0, &r16, &q16)),
                );
                push(
                    "naive",
                    "f32",
                    "scalar",
                    time_median_us(median_of, || gemm_at_b_naive(-2.0, &r, &q)),
                );
            }
        }
    }

    BenchReport { seed: SEED, median_of, quick, entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(
        kernel: &'static str,
        precision: &'static str,
        backend: &'static str,
        batch: usize,
        gflops: f64,
    ) -> BenchEntry {
        BenchEntry { kernel, precision, backend, m: 8, n: 8, d: 4, batch, wall_us: 10.0, gflops }
    }

    fn tiny_report() -> BenchReport {
        BenchReport {
            seed: SEED,
            median_of: 1,
            quick: true,
            entries: vec![
                entry("packed", "f32", "scalar", 1, 1.0),
                entry("flat", "f32", "scalar", 1, 1.0),
                entry("packed", "f16", "scalar", 1, 2.0),
                entry("flat", "f16", "scalar", 1, 1.0),
            ],
        }
    }

    #[test]
    fn json_roundtrip_validates() {
        let json = tiny_report().to_json();
        validate_json(&json).expect("valid report");
    }

    #[test]
    fn validation_rejects_garbage() {
        assert!(validate_json("{").is_err());
        assert!(validate_json("{}").is_err());
        let truncated = tiny_report().to_json().replace("\"gflops\": 1.0000", "\"oops\": 1");
        assert!(validate_json(&truncated).is_err());
        let missing_backend = tiny_report().to_json().replacen("\"backend\"", "\"oops\"", 1);
        assert!(validate_json(&missing_backend).is_err(), "v2 requires backend on every entry");
    }

    #[test]
    fn guard_passes_and_fails_on_ratio() {
        let r = tiny_report();
        assert!(check_guard(&r, 0.9).is_ok());
        assert!(check_guard(&r, 1.5).is_err(), "f32 ratio is 1.0, floor 1.5 must fail");
    }

    #[test]
    fn guard_pins_to_scalar_rows() {
        // A fast SIMD packed row must not rescue a slow scalar packed row.
        let mut r = tiny_report();
        for e in &mut r.entries {
            if e.kernel == "packed" && e.precision == "f32" {
                e.gflops = 0.5;
            }
        }
        r.entries.push(entry("packed", "f32", "avx2", 1, 50.0));
        assert!(check_guard(&r, 0.9).is_err(), "scalar packed f32 is 0.5x flat");
    }

    #[test]
    fn simd_guard_compares_matching_cells() {
        let mut r = tiny_report();
        assert!(check_simd_guard(&r, 1.0).is_ok(), "no SIMD rows passes vacuously");
        r.entries.push(entry("packed", "f32", "avx2", 1, 4.0));
        assert!(check_simd_guard(&r, 1.0).is_ok());
        assert!(check_simd_guard(&r, 5.0).is_err(), "ratio is 4.0, floor 5.0 must fail");
        r.entries.push(entry("packed", "f32", "avx2", 2, 4.0));
        assert!(
            check_simd_guard(&r, 1.0).is_err(),
            "batch-2 SIMD row has no scalar twin: must be an error, not skipped"
        );
    }

    #[test]
    fn largest_picks_biggest_batch_times_m() {
        let mut r = tiny_report();
        r.entries.push(entry("packed", "f32", "scalar", 4, 3.0));
        assert_eq!(r.largest("packed", "f32").expect("present").batch, 4);
        assert_eq!(r.largest_on("packed", "f32", "scalar").expect("present").batch, 4);
        assert!(r.largest_on("packed", "f32", "avx2").is_none());
    }
}
