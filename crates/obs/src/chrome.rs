//! Chrome trace-event ("Perfetto JSON") export.
//!
//! Emits the legacy JSON object format understood by both
//! `chrome://tracing` and <https://ui.perfetto.dev>: complete duration
//! events (`"ph":"X"`) with microsecond timestamps, plus
//! `process_name`/`thread_name` metadata events so tracks come up
//! labeled. The two-clock convention is structural: every sim-clock
//! event lives in process [`ChromeTrace::SIM_PID`] and every wall-clock
//! event in process [`ChromeTrace::WALL_PID`], so a viewer can never
//! visually conflate simulated device time with measured host time.

use std::collections::BTreeMap;

use crate::trace::{Clock, SpanRecord};

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Builder for one Chrome trace-event JSON document.
///
/// Tracks (pid, tid) pairs: request one per logical timeline via
/// [`ChromeTrace::track`] (which also emits its `thread_name` metadata),
/// then place duration events on it with [`ChromeTrace::add_complete`].
/// [`ChromeTrace::add_spans`] converts ring-buffer [`SpanRecord`]s,
/// routing each to the process matching its clock.
pub struct ChromeTrace {
    events: Vec<String>,
    tracks: BTreeMap<(u32, String), u32>,
    next_tid: BTreeMap<u32, u32>,
}

impl ChromeTrace {
    /// Process id hosting all sim-clock tracks (timestamps are modeled
    /// device microseconds starting at 0).
    pub const SIM_PID: u32 = 1;
    /// Process id hosting all wall-clock tracks (timestamps are measured
    /// microseconds since process start).
    pub const WALL_PID: u32 = 2;

    /// An empty trace with both clock processes pre-named.
    pub fn new() -> ChromeTrace {
        let mut t = ChromeTrace {
            events: Vec::new(),
            tracks: BTreeMap::new(),
            next_tid: BTreeMap::new(),
        };
        t.name_process(Self::SIM_PID, "sim clock (modeled device time, us)");
        t.name_process(Self::WALL_PID, "wall clock (measured host time, us)");
        t
    }

    fn push_meta(&mut self, meta_name: &str, pid: u32, tid: Option<u32>, value: &str) {
        let tid_part = tid.map(|t| format!("\"tid\":{t},")).unwrap_or_default();
        self.events.push(format!(
            "{{\"name\":\"{meta_name}\",\"ph\":\"M\",\"pid\":{pid},{tid_part}\"args\":{{\"name\":\"{}\"}}}}",
            esc(value)
        ));
    }

    /// Name a process (one per clock by convention).
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.push_meta("process_name", pid, None, name);
    }

    /// Get (or allocate) the tid of the named track inside `pid`,
    /// emitting its `thread_name` metadata on first use. Tids are
    /// assigned in first-request order starting at 1, so pre-registering
    /// tracks fixes their on-screen order.
    pub fn track(&mut self, pid: u32, name: &str) -> u32 {
        if let Some(&tid) = self.tracks.get(&(pid, name.to_string())) {
            return tid;
        }
        let next = self.next_tid.entry(pid).or_insert(1);
        let tid = *next;
        *next += 1;
        self.tracks.insert((pid, name.to_string()), tid);
        self.push_meta("thread_name", pid, Some(tid), name);
        tid
    }

    /// Append a complete duration event (`"ph":"X"`) on the
    /// `(pid, tid)` track. `ts_us`/`dur_us` are microseconds on the clock
    /// implied by the track's pid.
    pub fn add_complete(
        &mut self,
        (pid, tid): (u32, u32),
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, String)],
    ) {
        let args_json = args
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", esc(k), esc(v)))
            .collect::<Vec<_>>()
            .join(",");
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{{args_json}}}}}",
            esc(name),
            esc(cat),
            fmt_f64(ts_us),
            fmt_f64(dur_us.max(0.0)),
        ));
    }

    /// Convert ring-buffer span records into duration events. Each span
    /// goes to the process matching its clock ([`Clock::Sim`] →
    /// [`Self::SIM_PID`], [`Clock::Wall`] → [`Self::WALL_PID`]) on the
    /// track named by its `track` tag (falling back to the span name), so
    /// the two clocks can never share a timeline. Span lineage rides
    /// along in `args` as hex ids.
    pub fn add_spans(&mut self, spans: &[SpanRecord]) {
        for rec in spans {
            let pid = match rec.clock {
                Clock::Sim => Self::SIM_PID,
                Clock::Wall => Self::WALL_PID,
            };
            let track_name = rec.tag("track").unwrap_or(&rec.name).to_string();
            let tid = self.track(pid, &track_name);
            let mut args: Vec<(&str, String)> = vec![
                ("trace_id", format!("{:032x}", rec.trace_id)),
                ("span_id", format!("{:016x}", rec.span_id)),
                ("parent_id", format!("{:016x}", rec.parent_id)),
            ];
            for (k, v) in &rec.tags {
                if k != "track" {
                    args.push((k.as_str(), v.clone()));
                }
            }
            self.add_complete((pid, tid), &rec.name, rec.clock.as_str(), rec.start_us, rec.dur_us, &args);
        }
    }

    /// Number of events buffered (duration + metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been added (metadata from [`Self::new`]
    /// still counts as content, so a fresh trace is *not* empty).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the trace as a Chrome trace-event JSON document (the
    /// `{"traceEvents":[...]}` object form). Load it by dragging the file
    /// into <https://ui.perfetto.dev> or `chrome://tracing`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

impl Default for ChromeTrace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceContext;

    #[test]
    fn track_tids_are_stable_and_ordered() {
        let mut t = ChromeTrace::new();
        let a = t.track(ChromeTrace::SIM_PID, "engine: H2D");
        let b = t.track(ChromeTrace::SIM_PID, "engine: compute");
        let a2 = t.track(ChromeTrace::SIM_PID, "engine: H2D");
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(a, a2);
        // Separate pid gets its own tid space.
        assert_eq!(t.track(ChromeTrace::WALL_PID, "request"), 1);
    }

    #[test]
    fn json_is_object_form_with_events() {
        let mut t = ChromeTrace::new();
        let tid = t.track(ChromeTrace::SIM_PID, "stream 0");
        t.add_complete((ChromeTrace::SIM_PID, tid), "h2d", "sim", 0.0, 12.5, &[("chunk", "0".into())]);
        let json = t.to_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"dur\":12.5"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn names_are_escaped() {
        let mut t = ChromeTrace::new();
        let tid = t.track(ChromeTrace::WALL_PID, "a\"b\\c");
        t.add_complete((ChromeTrace::WALL_PID, tid), "x\ny", "wall", 0.0, 1.0, &[]);
        let json = t.to_json();
        assert!(json.contains("a\\\"b\\\\c"));
        assert!(json.contains("x\\ny"));
    }

    #[test]
    fn spans_route_by_clock() {
        let ctx = TraceContext::root();
        let wall = crate::trace::SpanRecord {
            trace_id: ctx.trace_id,
            span_id: 1,
            parent_id: 0,
            name: "request".to_string(),
            clock: Clock::Wall,
            start_us: 5.0,
            dur_us: 100.0,
            tags: vec![("track".to_string(), "request".to_string())],
        };
        let sim = crate::trace::SpanRecord {
            trace_id: ctx.trace_id,
            span_id: 2,
            parent_id: 1,
            name: "gemm".to_string(),
            clock: Clock::Sim,
            start_us: 0.0,
            dur_us: 42.0,
            tags: vec![("track".to_string(), "shard 0 (sim)".to_string())],
        };
        let mut t = ChromeTrace::new();
        t.add_spans(&[wall, sim]);
        let json = t.to_json();
        assert!(json.contains(&format!("\"cat\":\"wall\",\"ph\":\"X\",\"ts\":5,\"dur\":100,\"pid\":{}", ChromeTrace::WALL_PID)));
        assert!(json.contains(&format!("\"cat\":\"sim\",\"ph\":\"X\",\"ts\":0,\"dur\":42,\"pid\":{}", ChromeTrace::SIM_PID)));
        assert!(json.contains("\"span_id\":\"0000000000000002\""));
    }
}
