//! End-to-end smoke test of the kernel-bench generator at toy shapes: the
//! full measure → report → JSON → validate → guard path must hold together
//! without ever running the (slow) paper-scale shapes.

use texid_bench::kernels::{
    check_guard, check_simd_guard, run_custom, validate_json, SCHEMA, SEED,
};
use texid_linalg::{available_backends, Backend};

#[test]
fn tiny_run_emits_a_valid_report() {
    let backends = available_backends();
    let report = run_custom(&[6, 9], &[1, 2], 16, 8, 1, true, &backends);
    assert_eq!(report.seed, SEED);
    assert_eq!(report.median_of, 1);
    assert!(report.quick);

    // 6 kernel×precision rows per (m, batch) per backend + 3 baseline rows
    // per m at batch 1.
    assert_eq!(report.entries.len(), 2 * 2 * 6 * backends.len() + 2 * 3);
    assert!(report.entries.iter().all(|e| e.wall_us > 0.0 && e.gflops > 0.0));

    let json = report.to_json();
    assert!(json.contains(SCHEMA));
    validate_json(&json).expect("schema-valid JSON");

    // The guards must at least be *evaluable* on a real report — a 0.0
    // floor always passes, and every SIMD row has its scalar twin.
    check_guard(&report, 0.0).expect("guard evaluable");
    check_simd_guard(&report, 0.0).expect("simd guard evaluable");
}

#[test]
fn forced_scalar_run_has_only_scalar_rows() {
    let report = run_custom(&[4], &[1], 8, 4, 1, true, &[Backend::Scalar]);
    assert!(report.entries.iter().all(|e| e.backend == "scalar"));
    check_simd_guard(&report, 1.0).expect("vacuously true without SIMD rows");
}

#[test]
fn largest_shape_selection_prefers_big_batches() {
    let report = run_custom(&[4], &[1, 3], 8, 4, 1, true, &available_backends());
    let e = report.largest("packed", "f32").expect("packed f32 measured");
    assert_eq!((e.batch, e.m), (3, 4));
}
