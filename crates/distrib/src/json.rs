//! Minimal JSON value, parser and serializer for the REST API.
//!
//! Hand-rolled (the workspace keeps network substrates from-scratch);
//! supports the full JSON grammar except for exotic number formats beyond
//! `f64`, which the API never uses.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (sorted keys for deterministic output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer accessor (rejects non-integral numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize to a compact string.
    #[allow(clippy::inherent_to_string)] // deliberate: Json::to_string is the API
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document (must consume all non-whitespace input).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError { at: pos, msg: "trailing characters" });
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(JsonError { at: *pos, msg: "unexpected end of input" });
    };
    match c {
        b'n' => expect_lit(b, pos, "null", Json::Null),
        b't' => expect_lit(b, pos, "true", Json::Bool(true)),
        b'f' => expect_lit(b, pos, "false", Json::Bool(false)),
        b'"' => Ok(Json::Str(parse_string(b, pos)?)),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError { at: *pos, msg: "expected ',' or ']'" }),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(JsonError { at: *pos, msg: "expected ':'" });
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(JsonError { at: *pos, msg: "expected ',' or '}'" }),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => Err(JsonError { at: *pos, msg: "unexpected character" }),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(JsonError { at: *pos, msg: "bad literal" })
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError { at: start, msg: "invalid number" })
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(JsonError { at: *pos, msg: "expected string" });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(JsonError { at: *pos, msg: "unterminated string" });
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err(JsonError { at: *pos, msg: "unterminated escape" });
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if *pos + 4 > b.len() {
                            return Err(JsonError { at: *pos, msg: "bad \\u escape" });
                        }
                        let hex = std::str::from_utf8(&b[*pos..*pos + 4])
                            .map_err(|_| JsonError { at: *pos, msg: "bad \\u escape" })?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError { at: *pos, msg: "bad \\u escape" })?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(JsonError { at: *pos, msg: "unknown escape" }),
                }
            }
            c if c < 0x80 => out.push(c as char),
            _ => {
                // Multi-byte UTF-8: copy the full sequence.
                let len = utf8_len(c);
                let end = *pos - 1 + len;
                if end > b.len() {
                    return Err(JsonError { at: *pos, msg: "invalid utf-8" });
                }
                let s = std::str::from_utf8(&b[*pos - 1..end])
                    .map_err(|_| JsonError { at: *pos, msg: "invalid utf-8" })?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let doc = r#"{"id": 5, "name": "tea", "scores": [1, 2.5, -3], "meta": {"ok": true, "none": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("name").unwrap().as_str(), Some("tea"));
        assert_eq!(v.get("scores").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("meta").unwrap().get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("meta").unwrap().get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("id").unwrap().as_bool(), None);
        // Serialize → parse is identity.
        let again = parse(&v.to_string()).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\tе".to_string()); // includes cyrillic е
        let s = v.to_string();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("0").unwrap().as_f64(), Some(0.0));
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse(" [ ] ").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn integer_formatting_has_no_decimal_point() {
        assert_eq!(Json::Num(5.0).to_string(), "5");
        assert_eq!(Json::Num(5.25).to_string(), "5.25");
    }

    #[test]
    fn object_builder() {
        let v = Json::obj([("a", Json::Num(1.0)), ("b", Json::Bool(false))]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":false}"#);
    }
}
