//! Dominant-orientation assignment (Lowe §5).
//!
//! A 36-bin gradient-orientation histogram is accumulated in a Gaussian
//! window of 1.5σ around each keypoint (in its own octave/level), smoothed,
//! and the peak — refined by parabolic interpolation — becomes the keypoint
//! orientation. Secondary peaks above 80% of the maximum spawn duplicate
//! keypoints, exactly as in Lowe's implementation.

use crate::keypoint::Keypoint;
use crate::pyramid::Pyramid;
use rayon::prelude::*;
use texid_image::filter::gradient_at;
use texid_image::GrayImage;

const BINS: usize = 36;

/// Histogram for one keypoint, computed on `img` (its Gaussian level).
fn orientation_histogram(img: &GrayImage, kp: &Keypoint, oct_sigma: f32) -> [f32; BINS] {
    let mut hist = [0.0f32; BINS];
    let sigma_w = 1.5 * oct_sigma;
    let radius = (3.0 * sigma_w).round().max(1.0) as isize;
    let cx = kp.oct_x;
    let cy = kp.oct_y;
    let denom = 2.0 * sigma_w * sigma_w;

    let xi = cx.round() as isize;
    let yi = cy.round() as isize;
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let px = xi + dx;
            let py = yi + dy;
            if px < 1 || py < 1 || px >= img.width() as isize - 1 || py >= img.height() as isize - 1
            {
                continue;
            }
            let (gx, gy) = gradient_at(img, px as usize, py as usize);
            let mag = (gx * gx + gy * gy).sqrt();
            if mag < 1e-9 {
                continue;
            }
            let fx = px as f32 - cx;
            let fy = py as f32 - cy;
            let w = (-(fx * fx + fy * fy) / denom).exp();
            let angle = gy.atan2(gx); // (-π, π]
            let mut bin =
                ((angle + core::f32::consts::PI) / (2.0 * core::f32::consts::PI) * BINS as f32)
                    .floor() as isize;
            if bin >= BINS as isize {
                bin = 0;
            }
            hist[bin as usize] += w * mag;
        }
    }

    // Two passes of circular [1 4 6 4 1]/16-ish smoothing (Lowe smooths 6×
    // with a box; two binomial passes are equivalent enough and cheaper).
    for _ in 0..2 {
        let snapshot = hist;
        for i in 0..BINS {
            let prev = snapshot[(i + BINS - 1) % BINS];
            let next = snapshot[(i + 1) % BINS];
            hist[i] = 0.25 * prev + 0.5 * snapshot[i] + 0.25 * next;
        }
    }
    hist
}

/// Convert a histogram bin (with parabolic offset) back to radians.
fn bin_to_angle(bin: f32) -> f32 {
    let two_pi = 2.0 * core::f32::consts::PI;
    let mut a = bin / BINS as f32 * two_pi - core::f32::consts::PI;
    if a <= -core::f32::consts::PI {
        a += two_pi;
    }
    if a > core::f32::consts::PI {
        a -= two_pi;
    }
    a
}

/// Assign orientations; keypoints with secondary peaks ≥ `0.8·max` are
/// duplicated (one per orientation). Returns the expanded keypoint list.
pub fn assign_orientations(pyr: &Pyramid, keypoints: Vec<Keypoint>) -> Vec<Keypoint> {
    keypoints
        .into_par_iter()
        .flat_map(|kp| {
            let level = (kp.interval.round() as usize).clamp(0, pyr.intervals + 2);
            let img = &pyr.octaves[kp.octave].gaussians[level];
            let oct_sigma = kp.octave_sigma(pyr.sigma0, pyr.intervals);
            let hist = orientation_histogram(img, &kp, oct_sigma);
            let max = hist.iter().cloned().fold(0.0f32, f32::max);
            let mut out = Vec::with_capacity(1);
            if max <= 0.0 {
                // Degenerate (flat window): keep with zero orientation.
                out.push(kp);
                return out;
            }
            for i in 0..BINS {
                let prev = hist[(i + BINS - 1) % BINS];
                let next = hist[(i + 1) % BINS];
                if hist[i] >= 0.8 * max && hist[i] > prev && hist[i] > next {
                    // Parabolic peak interpolation.
                    let denom = prev - 2.0 * hist[i] + next;
                    let offset = if denom.abs() < 1e-12 {
                        0.0
                    } else {
                        0.5 * (prev - next) / denom
                    };
                    let angle = bin_to_angle(i as f32 + 0.5 + offset);
                    out.push(Keypoint { orientation: angle, ..kp });
                }
            }
            if out.is_empty() {
                out.push(kp);
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect_keypoints, DetectParams};
    use texid_image::TextureGenerator;

    /// Build a keypoint at the centre of a synthetic gradient patch.
    fn centred_keypoint() -> Keypoint {
        Keypoint {
            x: 32.0,
            y: 32.0,
            sigma: 1.6,
            orientation: 0.0,
            response: 1.0,
            octave: 0,
            interval: 1.0,
            oct_x: 32.0,
            oct_y: 32.0,
        }
    }

    #[test]
    fn ramp_gradient_gives_expected_orientation() {
        // Intensity increasing along +x ⇒ gradient points along +x ⇒ angle 0.
        let img = GrayImage::from_fn(64, 64, |x, _| x as f32 * 0.01);
        let hist = orientation_histogram(&img, &centred_keypoint(), 1.6);
        let peak = hist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let angle = bin_to_angle(peak as f32 + 0.5);
        assert!(angle.abs() < 0.3, "expected ~0 rad, got {angle}");
    }

    #[test]
    fn vertical_ramp_gives_quarter_turn() {
        let img = GrayImage::from_fn(64, 64, |_, y| y as f32 * 0.01);
        let hist = orientation_histogram(&img, &centred_keypoint(), 1.6);
        let peak = hist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let angle = bin_to_angle(peak as f32 + 0.5);
        assert!((angle - core::f32::consts::FRAC_PI_2).abs() < 0.3, "got {angle}");
    }

    #[test]
    fn orientations_in_principal_range() {
        let im = TextureGenerator::with_size(128).generate(9);
        let pyr = Pyramid::build(&im, 3, 3, 1.6, 0.5);
        let kps = detect_keypoints(&pyr, &DetectParams::default());
        let oriented = assign_orientations(&pyr, kps);
        assert!(!oriented.is_empty());
        for k in &oriented {
            assert!(
                k.orientation > -core::f32::consts::PI - 1e-5
                    && k.orientation <= core::f32::consts::PI + 1e-5
            );
        }
    }

    #[test]
    fn duplicates_only_add_orientations() {
        let im = TextureGenerator::with_size(128).generate(10);
        let pyr = Pyramid::build(&im, 3, 3, 1.6, 0.5);
        let kps = detect_keypoints(&pyr, &DetectParams::default());
        let n_before = kps.len();
        let oriented = assign_orientations(&pyr, kps);
        assert!(oriented.len() >= n_before);
        // Typically < 30% of keypoints get a second orientation.
        assert!(oriented.len() < n_before * 2);
    }

    #[test]
    fn bin_angle_roundtrip_range() {
        for i in 0..BINS {
            let a = bin_to_angle(i as f32 + 0.5);
            assert!(a > -core::f32::consts::PI - 1e-6 && a <= core::f32::consts::PI + 1e-6);
        }
    }
}
