//! Visual debugging: dump every pipeline stage as PGM images you can open
//! with any viewer — the reference texture, the simulated re-capture, and a
//! side-by-side match visualization with correspondence lines — plus a
//! Perfetto timeline of the multi-stream GPU pipeline schedule.
//!
//! ```sh
//! cargo run --release -p texid-apps --example visualize_pipeline
//! # → ./texid-viz/*.pgm + ./texid-viz/pipeline.trace.json
//! # open the .trace.json at https://ui.perfetto.dev or chrome://tracing
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use texid_gpu::{DeviceSpec, GpuSim, Precision};
use texid_image::io::write_pgm;
use texid_image::{CaptureCondition, GrayImage, TextureGenerator};
use texid_knn::geometry::{verify_matches, RansacParams};
use texid_knn::{match_pair, ExecMode, FeatureBlock, MatchConfig};
use texid_sift::{extract, FeatureMatrix, SiftConfig};

/// Draw a small cross at (x, y).
fn draw_cross(im: &mut GrayImage, x: f32, y: f32, value: f32) {
    let (xi, yi) = (x.round() as isize, y.round() as isize);
    for d in -2isize..=2 {
        for (px, py) in [(xi + d, yi), (xi, yi + d)] {
            if px >= 0 && py >= 0 && (px as usize) < im.width() && (py as usize) < im.height() {
                im.set(px as usize, py as usize, value);
            }
        }
    }
}

/// Draw a line with integer DDA.
fn draw_line(im: &mut GrayImage, x0: f32, y0: f32, x1: f32, y1: f32, value: f32) {
    let steps = ((x1 - x0).abs().max((y1 - y0).abs()).ceil() as usize).max(1);
    for s in 0..=steps {
        let t = s as f32 / steps as f32;
        let x = (x0 + (x1 - x0) * t).round() as isize;
        let y = (y0 + (y1 - y0) * t).round() as isize;
        if x >= 0 && y >= 0 && (x as usize) < im.width() && (y as usize) < im.height() {
            im.set(x as usize, y as usize, value);
        }
    }
}

/// Side-by-side canvas with a separator column.
fn side_by_side(a: &GrayImage, b: &GrayImage) -> GrayImage {
    let h = a.height().max(b.height());
    let w = a.width() + b.width() + 4;
    let mut canvas = GrayImage::filled(w, h, 0.0);
    for y in 0..a.height() {
        for x in 0..a.width() {
            canvas.set(x, y, a.get(x, y));
        }
    }
    for y in 0..b.height() {
        for x in 0..b.width() {
            canvas.set(a.width() + 4 + x, y, b.get(x, y));
        }
    }
    canvas
}

fn main() -> std::io::Result<()> {
    let out_dir = std::path::PathBuf::from("texid-viz");
    std::fs::create_dir_all(&out_dir)?;

    // Stage 1: reference texture + its re-capture.
    let factory = TextureGenerator::with_size(256);
    let reference_img = factory.generate(5);
    let mut rng = SmallRng::seed_from_u64(17);
    let cond = CaptureCondition::moderate(&mut rng);
    let query_img = cond.apply(&reference_img, 0);
    write_pgm(&reference_img, &out_dir.join("01_reference.pgm"))?;
    write_pgm(&query_img, &out_dir.join("02_query_capture.pgm"))?;

    // Stage 2: keypoints.
    let reference: FeatureMatrix = extract(&reference_img, &SiftConfig::reference(384));
    let query: FeatureMatrix = extract(&query_img, &SiftConfig::query(768));
    let mut ref_kp_img = reference_img.clone();
    for kp in &reference.keypoints {
        draw_cross(&mut ref_kp_img, kp.x, kp.y, 1.0);
    }
    write_pgm(&ref_kp_img, &out_dir.join("03_reference_keypoints.pgm"))?;
    println!(
        "extracted {} reference / {} query features (rotation {:.1} deg, zoom {:.2})",
        reference.len(),
        query.len(),
        cond.rotation_deg,
        cond.scale
    );

    // Stage 3: matching + geometric verification.
    let cfg = MatchConfig { precision: Precision::F32, exec: ExecMode::Full, ..MatchConfig::default() };
    let mut sim = GpuSim::new(DeviceSpec::tesla_p100());
    let st = sim.default_stream();
    let out = match_pair(
        &cfg,
        &FeatureBlock::F32(reference.mat.clone()),
        &FeatureBlock::F32(query.mat.clone()),
        &mut sim,
        st,
    );
    let geo = verify_matches(&out.matches, &reference.keypoints, &query.keypoints, &RansacParams::default());
    println!(
        "{} ratio-test matches, {} geometric inliers (recovered rot {:.1} deg, scale {:.2})",
        out.matches.len(),
        geo.inlier_count(),
        geo.transform.rotation().to_degrees(),
        geo.transform.scale()
    );

    // Stage 4: correspondence visualization (inliers bright, outliers dim).
    let mut canvas = side_by_side(&reference_img, &query_img);
    let off = (reference_img.width() + 4) as f32;
    let inlier_set: std::collections::HashSet<usize> = geo.inliers.iter().copied().collect();
    for (i, m) in out.matches.iter().enumerate() {
        let r = &reference.keypoints[m.ref_idx as usize];
        let q = &query.keypoints[m.query_idx as usize];
        let v = if inlier_set.contains(&i) { 1.0 } else { 0.25 };
        draw_line(&mut canvas, r.x, r.y, q.x + off, q.y, v);
    }
    write_pgm(&canvas, &out_dir.join("04_matches.pgm"))?;
    println!("wrote texid-viz/01..04*.pgm");

    // Stage 5: the schedule itself — a 4-stream, 16-chunk pipeline run as a
    // Chrome trace-event timeline (streams, DMA/compute engines, and the
    // driver lock each on their own track, all on the sim clock).
    let spec = DeviceSpec::tesla_p100();
    let chunk = texid_gpu::pipeline::ChunkSpec {
        batch: 64,
        m: 768,
        n: 768,
        d: 128,
        precision: Precision::F16,
        pinned: true,
    };
    let (stats, trace) = texid_gpu::pipeline::simulate_traced(
        &spec,
        &chunk,
        16,
        4,
        spec.calib.stream_serial_fraction,
    );
    let trace_path = out_dir.join("pipeline.trace.json");
    std::fs::write(&trace_path, trace.to_json())?;
    println!(
        "wrote {} ({} events, makespan {:.0} us) — open in https://ui.perfetto.dev",
        trace_path.display(),
        trace.len(),
        stats.makespan_us
    );

    assert!(geo.inlier_count() > 20, "visualization ran on a failed match");
    Ok(())
}
