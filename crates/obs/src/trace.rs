//! Distributed request tracing: trace contexts, span records, and the
//! bounded ring buffer holding recently finished spans.
//!
//! A [`TraceContext`] is created at the system edge (the REST API mints
//! one per request, honoring an incoming `X-Texid-Trace-Id` header) and
//! flows down the call tree; every component that does work derives a
//! [`TraceContext::child`] and records a span — either a wall-clock
//! [`TraceSpan`] guard or an explicit sim-clock record via
//! [`TraceRing::record_sim`]. Finished spans land in a [`TraceRing`]: a
//! bounded buffer that overwrites the oldest entries under pressure and
//! counts every casualty in `texid_trace_events_dropped_total`, so
//! overflow is itself observable instead of a silent gap in a timeline.
//!
//! Two clocks, never conflated: [`Clock::Wall`] spans carry microseconds
//! since process start ([`wall_now_us`]); [`Clock::Sim`] spans carry the
//! GPU cost model's simulated microseconds, which are *accounted*, never
//! slept. Consumers (the REST `/trace/<id>` tree, the Perfetto exporter
//! in [`crate::ChromeTrace`]) keep the two on separate tracks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::Counter;
use crate::Registry;

/// HTTP header that carries the 128-bit trace id as 32 lowercase hex
/// characters. The REST edge reads it to join an existing trace and
/// echoes it on every response.
pub const TRACE_HEADER: &str = "X-Texid-Trace-Id";

/// Default capacity of the process-wide [`global_ring`]. A traced
/// 14-shard search records ~100 spans (request, cluster, one leg plus six
/// engine stages per shard, retries), so 4096 slots hold the last ~40
/// searches before overwrites begin.
pub const DEFAULT_TRACE_RING_CAPACITY: usize = 4096;

/// Which clock a span's timestamps are on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Clock {
    /// Measured host time, microseconds since process start.
    Wall,
    /// Simulated device time from the GPU cost model, microseconds.
    Sim,
}

impl Clock {
    /// Lowercase name used in JSON payloads and exporter categories.
    pub fn as_str(&self) -> &'static str {
        match self {
            Clock::Wall => "wall",
            Clock::Sim => "sim",
        }
    }
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds of wall time since the first call in this process. All
/// wall-clock spans share this epoch, so their timestamps are mutually
/// comparable (and load directly into a trace viewer).
pub fn wall_now_us() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static ID_COUNTER: AtomicU64 = AtomicU64::new(0);
static ID_SEED: OnceLock<u64> = OnceLock::new();

/// A process-unique non-zero 64-bit id (span ids; trace ids use two).
fn next_id() -> u64 {
    let seed = *ID_SEED.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
            | 1
    });
    loop {
        let n = ID_COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seed.wrapping_add(n));
        if id != 0 {
            return id;
        }
    }
}

/// Propagated identity of one request's trace position: which trace this
/// work belongs to, which span *is* this work, and which span caused it.
///
/// `parent_id == 0` marks a root span. Contexts are tiny `Copy` values —
/// derive a [`TraceContext::child`] per unit of work and hand it down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id shared by every span of one request.
    pub trace_id: u128,
    /// This span's id (non-zero).
    pub span_id: u64,
    /// The parent span's id; 0 for a root span.
    pub parent_id: u64,
}

impl TraceContext {
    /// A fresh root context with a newly minted trace id.
    pub fn root() -> TraceContext {
        let trace_id = ((next_id() as u128) << 64) | next_id() as u128;
        TraceContext { trace_id, span_id: next_id(), parent_id: 0 }
    }

    /// A root context joining an existing trace (e.g. from an incoming
    /// `X-Texid-Trace-Id` header).
    pub fn with_trace_id(trace_id: u128) -> TraceContext {
        TraceContext { trace_id, span_id: next_id(), parent_id: 0 }
    }

    /// A child context: same trace, fresh span id, parented here.
    pub fn child(&self) -> TraceContext {
        TraceContext { trace_id: self.trace_id, span_id: next_id(), parent_id: self.span_id }
    }

    /// The trace id as 32 lowercase hex characters (the header/URL form).
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// Parse a hex trace id (1–32 hex chars, case-insensitive). Returns
    /// `None` for empty, overlong, or non-hex input.
    pub fn parse_trace_id(s: &str) -> Option<u128> {
        let s = s.trim();
        if s.is_empty() || s.len() > 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok()
    }
}

/// One finished span, as stored in the ring and served by `/trace/<id>`.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u128,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id; 0 for roots.
    pub parent_id: u64,
    /// Human-readable operation name (`"POST /search"`, `"shard.leg"`).
    pub name: String,
    /// Which clock `start_us`/`dur_us` are on.
    pub clock: Clock,
    /// Start time, µs ([`wall_now_us`] epoch for wall, sim time for sim).
    pub start_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
    /// Free-form key/value annotations. The `track` tag, when present,
    /// names the exporter track the span renders on.
    pub tags: Vec<(String, String)>,
}

impl SpanRecord {
    /// Look up a tag value.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// One line of the `/traces` index: a trace id with its root span info.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// Trace id.
    pub trace_id: u128,
    /// Root span name, if the root is still in the ring.
    pub root: Option<String>,
    /// Earliest wall start among the trace's buffered spans, µs.
    pub start_us: f64,
    /// Root span duration (or 0 if the root was overwritten), µs.
    pub dur_us: f64,
    /// Buffered span count for this trace.
    pub spans: usize,
}

struct Slot {
    data: Mutex<Option<SpanRecord>>,
}

/// Bounded ring buffer of finished spans.
///
/// Writers claim a slot with one relaxed `fetch_add` and publish under a
/// per-slot lock they only `try_lock` — the hot path never blocks. Under
/// pressure the ring overwrites oldest-first, and every overwritten or
/// contended-away record increments `texid_trace_events_dropped_total`,
/// so a gappy timeline is always explained by a visible counter rather
/// than silently missing data.
pub struct TraceRing {
    slots: Vec<Slot>,
    head: AtomicU64,
    dropped: Counter,
}

impl TraceRing {
    /// A ring with `capacity` slots, registering its dropped-events
    /// counter (`texid_trace_events_dropped_total`) in `registry`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, registry: &Registry) -> TraceRing {
        assert!(capacity > 0, "trace ring needs at least one slot");
        TraceRing {
            slots: (0..capacity).map(|_| Slot { data: Mutex::new(None) }).collect(),
            head: AtomicU64::new(0),
            dropped: registry.counter(
                "texid_trace_events_dropped",
                "Trace span records lost to ring-buffer overwrites or slot contention.",
                &[],
            ),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records dropped so far (overwrites + contended writes).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Store one finished span. Never blocks: a contended slot drops the
    /// *new* record, an occupied slot drops the *old* one; both increment
    /// the dropped counter.
    pub fn record(&self, rec: SpanRecord) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        match slot.data.try_lock() {
            Ok(mut g) => {
                if g.replace(rec).is_some() {
                    self.dropped.inc();
                }
            }
            Err(_) => self.dropped.inc(),
        }
    }

    /// Record a sim-clock span as a fresh child of `parent`. Sim spans
    /// have no wall guard — the caller supplies modeled start/duration.
    pub fn record_sim(
        &self,
        parent: &TraceContext,
        name: &str,
        start_us: f64,
        dur_us: f64,
        tags: Vec<(String, String)>,
    ) {
        self.record(SpanRecord {
            trace_id: parent.trace_id,
            span_id: next_id(),
            parent_id: parent.span_id,
            name: name.to_string(),
            clock: Clock::Sim,
            start_us,
            dur_us,
            tags,
        });
    }

    /// Record an instantaneous wall-clock mark (e.g. a retry attempt) as
    /// a fresh child of `parent`.
    pub fn mark(&self, parent: &TraceContext, name: &str, tags: Vec<(String, String)>) {
        self.record(SpanRecord {
            trace_id: parent.trace_id,
            span_id: next_id(),
            parent_id: parent.span_id,
            name: name.to_string(),
            clock: Clock::Wall,
            start_us: wall_now_us(),
            dur_us: 0.0,
            tags,
        });
    }

    /// Start a wall-clock span *as* `ctx` (the caller already derived the
    /// child context, so ids can be handed out before work begins — e.g.
    /// to parent retry marks drawn while planning a shard leg). Records on
    /// drop, including on panic, so crashed legs stay visible.
    pub fn span(&self, ctx: &TraceContext, name: &str) -> TraceSpan<'_> {
        TraceSpan {
            ring: self,
            ctx: *ctx,
            name: name.to_string(),
            tags: Vec::new(),
            start_us: wall_now_us(),
            start: Instant::now(),
        }
    }

    /// All buffered spans of one trace, sorted by start time then id.
    pub fn snapshot_trace(&self, trace_id: u128) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::new();
        for slot in &self.slots {
            if let Ok(g) = slot.data.lock() {
                if let Some(rec) = g.as_ref() {
                    if rec.trace_id == trace_id {
                        out.push(rec.clone());
                    }
                }
            }
        }
        out.sort_by(|a, b| {
            a.start_us
                .partial_cmp(&b.start_us)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.span_id.cmp(&b.span_id))
        });
        out
    }

    /// Index of buffered traces, most recently started first, at most
    /// `limit` entries.
    pub fn recent_traces(&self, limit: usize) -> Vec<TraceSummary> {
        use std::collections::HashMap;
        let mut acc: HashMap<u128, TraceSummary> = HashMap::new();
        for slot in &self.slots {
            let Ok(g) = slot.data.lock() else { continue };
            let Some(rec) = g.as_ref() else { continue };
            let entry = acc.entry(rec.trace_id).or_insert_with(|| TraceSummary {
                trace_id: rec.trace_id,
                root: None,
                start_us: f64::INFINITY,
                dur_us: 0.0,
                spans: 0,
            });
            entry.spans += 1;
            if rec.clock == Clock::Wall && rec.start_us < entry.start_us {
                entry.start_us = rec.start_us;
            }
            if rec.parent_id == 0 {
                entry.root = Some(rec.name.clone());
                entry.dur_us = rec.dur_us;
            }
        }
        let mut out: Vec<TraceSummary> = acc
            .into_values()
            .map(|mut s| {
                if s.start_us.is_infinite() {
                    s.start_us = 0.0;
                }
                s
            })
            .collect();
        out.sort_by(|a, b| {
            b.start_us.partial_cmp(&a.start_us).unwrap_or(std::cmp::Ordering::Equal)
        });
        out.truncate(limit);
        out
    }
}

/// Scope guard for a wall-clock trace span: records into its ring on
/// drop (two clock reads + one ring write of overhead). Build tags with
/// the chainable [`TraceSpan::tag`].
#[must_use = "a trace span records on drop; binding it to `_` drops it immediately"]
pub struct TraceSpan<'r> {
    ring: &'r TraceRing,
    ctx: TraceContext,
    name: String,
    tags: Vec<(String, String)>,
    start_us: f64,
    start: Instant,
}

impl TraceSpan<'_> {
    /// Attach a tag (chainable).
    pub fn tag(mut self, key: &str, value: &str) -> Self {
        self.tags.push((key.to_string(), value.to_string()));
        self
    }

    /// The context this span records as.
    pub fn ctx(&self) -> &TraceContext {
        &self.ctx
    }
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        self.ring.record(SpanRecord {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_id: self.ctx.parent_id,
            name: std::mem::take(&mut self.name),
            clock: Clock::Wall,
            start_us: self.start_us,
            dur_us: self.start.elapsed().as_secs_f64() * 1e6,
            tags: std::mem::take(&mut self.tags),
        });
    }
}

static GLOBAL_RING: OnceLock<TraceRing> = OnceLock::new();

/// The process-wide trace ring every instrumented crate records into and
/// the REST `/trace` routes read. Its dropped counter registers in
/// [`crate::global`] on first use, so `/metrics` always exports
/// `texid_trace_events_dropped_total` once tracing is active.
pub fn global_ring() -> &'static TraceRing {
    GLOBAL_RING.get_or_init(|| TraceRing::new(DEFAULT_TRACE_RING_CAPACITY, crate::global()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace_id: u128, span_id: u64, parent_id: u64, name: &str, start: f64) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id,
            parent_id,
            name: name.to_string(),
            clock: Clock::Wall,
            start_us: start,
            dur_us: 1.0,
            tags: Vec::new(),
        }
    }

    #[test]
    fn context_lineage() {
        let root = TraceContext::root();
        assert_eq!(root.parent_id, 0);
        assert_ne!(root.span_id, 0);
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn trace_id_hex_roundtrip() {
        let ctx = TraceContext::root();
        let hex = ctx.trace_id_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(TraceContext::parse_trace_id(&hex), Some(ctx.trace_id));
        assert_eq!(TraceContext::parse_trace_id("ABC"), Some(0xabc));
        assert_eq!(TraceContext::parse_trace_id(""), None);
        assert_eq!(TraceContext::parse_trace_id("xyz"), None);
        assert_eq!(TraceContext::parse_trace_id(&"f".repeat(33)), None);
    }

    #[test]
    fn ring_stores_and_snapshots_by_trace() {
        let reg = Registry::new();
        let ring = TraceRing::new(16, &reg);
        ring.record(rec(7, 1, 0, "root", 0.0));
        ring.record(rec(7, 2, 1, "leg", 1.0));
        ring.record(rec(8, 3, 0, "other", 2.0));
        let spans = ring.snapshot_trace(7);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[1].name, "leg");
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let reg = Registry::new();
        let ring = TraceRing::new(4, &reg);
        for i in 0..10u64 {
            ring.record(rec(1, i + 1, 0, "s", i as f64));
        }
        // 10 writes into 4 slots: 6 overwrites, each counted.
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.snapshot_trace(1).len(), 4);
        let text = reg.render_prometheus();
        assert!(text.contains("texid_trace_events_dropped_total 6"), "{text}");
    }

    #[test]
    fn span_guard_records_on_drop_with_tags() {
        let reg = Registry::new();
        let ring = TraceRing::new(8, &reg);
        let ctx = TraceContext::root();
        {
            let _span = ring.span(&ctx, "work").tag("shard", "3");
        }
        let spans = ring.snapshot_trace(ctx.trace_id);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert_eq!(spans[0].span_id, ctx.span_id);
        assert_eq!(spans[0].tag("shard"), Some("3"));
        assert_eq!(spans[0].clock, Clock::Wall);
        assert!(spans[0].dur_us >= 0.0);
    }

    #[test]
    fn span_guard_records_even_on_panic() {
        let reg = Registry::new();
        let ring = TraceRing::new(8, &reg);
        let ctx = TraceContext::root();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = ring.span(&ctx, "doomed");
            panic!("injected");
        }));
        assert!(result.is_err());
        assert_eq!(ring.snapshot_trace(ctx.trace_id).len(), 1, "crashed span must survive");
    }

    #[test]
    fn sim_records_keep_their_clock() {
        let reg = Registry::new();
        let ring = TraceRing::new(8, &reg);
        let ctx = TraceContext::root();
        ring.record_sim(&ctx, "gemm", 10.0, 25.0, vec![("stage".into(), "gemm".into())]);
        let spans = ring.snapshot_trace(ctx.trace_id);
        assert_eq!(spans[0].clock, Clock::Sim);
        assert_eq!(spans[0].start_us, 10.0);
        assert_eq!(spans[0].dur_us, 25.0);
        assert_eq!(spans[0].parent_id, ctx.span_id);
        assert_ne!(spans[0].span_id, ctx.span_id);
    }

    #[test]
    fn recent_traces_index_roots() {
        let reg = Registry::new();
        let ring = TraceRing::new(32, &reg);
        ring.record(rec(1, 1, 0, "first", 0.0));
        ring.record(rec(1, 2, 1, "leg", 0.5));
        ring.record(rec(2, 3, 0, "second", 5.0));
        let idx = ring.recent_traces(10);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[0].trace_id, 2, "most recent first");
        assert_eq!(idx[0].root.as_deref(), Some("second"));
        assert_eq!(idx[1].spans, 2);
        assert_eq!(ring.recent_traces(1).len(), 1);
    }

    #[test]
    fn concurrent_writers_never_lose_more_than_counted() {
        let reg = Registry::new();
        let ring = TraceRing::new(64, &reg);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..100u64 {
                        ring.record(rec(9, t * 1000 + i + 1, 0, "w", i as f64));
                    }
                });
            }
        });
        let held = ring.snapshot_trace(9).len() as u64;
        assert_eq!(held + ring.dropped(), 800, "every record is held or counted dropped");
        assert!(held <= 64);
    }
}
