//! # texid-knn
//!
//! The paper's feature-matching engines. Texture identification matches a
//! query image against every reference image **separately** (one-by-one, §2)
//! with the 2-nearest-neighbors algorithm + Lowe's ratio test; this crate
//! implements that matching step in all the variants the paper measures:
//!
//! | variant | paper | module |
//! |---|---|---|
//! | OpenCV CUDA brute-force KNN | baseline, 2,012 img/s | [`pair::Algorithm::OpenCvCuda`] |
//! | cuBLAS KNN, full column sort | Garcia et al. \[9\] | [`pair::Algorithm::CublasFullSort`] |
//! | cuBLAS + register top-2 scan | ours, §4.1 | [`pair::Algorithm::CublasTop2`] |
//! | RootSIFT shortcut (Alg. 2) | ours, §5.1 | [`pair::Algorithm::RootSiftTop2`] |
//!
//! each in FP32 or scaled FP16, single-pair or **batched** (one GEMM over a
//! concatenated reference block, §5.2), charging simulated device time to a
//! [`texid_gpu::GpuSim`] stream while computing real results on the host.
//!
//! Post-matching: [`ratio`] (ratio test + match scoring) and [`geometry`]
//! (RANSAC similarity verification — the pipeline stage the paper describes
//! in Fig. 2 but excludes from its speed runs).

pub mod batched;
pub mod block;
pub mod geometry;
pub mod hamming;
pub mod ivf;
pub mod pair;
pub mod pooled;
pub mod ratio;

pub use batched::{match_batch, BatchOutcome};
pub use block::FeatureBlock;
pub use ivf::{kmeans, pool_columns, IvfIndex, Kmeans};
pub use pair::{match_pair, Algorithm, ExecMode, IvfParams, MatchConfig, PairOutcome, StepTimes};
pub use ratio::{count_good_matches, good_matches, FeatureMatch};
