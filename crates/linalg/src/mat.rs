//! Column-major matrix containers.
//!
//! Feature matrices in the paper are `d × m` with one local feature per
//! column, so a column-major layout makes every descriptor a contiguous
//! slice — the same layout cuBLAS consumes.

use crate::f16::F16;

/// A dense column-major `f32` matrix.
///
/// Element `(r, c)` lives at `data[c * rows + r]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// Create a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a column-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "column-major data length mismatch");
        Self { rows, cols, data }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for c in 0..cols {
            for r in 0..rows {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[c * self.rows + r]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[c * self.rows + r] = v;
    }

    /// Contiguous column slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[f32] {
        let start = c * self.rows;
        &self.data[start..start + self.rows]
    }

    /// Mutable contiguous column slice.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f32] {
        let start = c * self.rows;
        &mut self.data[start..start + self.rows]
    }

    /// Underlying column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Horizontally concatenate matrices with identical row counts
    /// (the paper's reference-matrix *batching*: `[R₁ R₂ … R_B]`).
    ///
    /// # Panics
    /// Panics if row counts differ or the input is empty.
    pub fn hconcat(mats: &[&Mat]) -> Mat {
        assert!(!mats.is_empty(), "hconcat of zero matrices");
        let rows = mats[0].rows;
        assert!(
            mats.iter().all(|m| m.rows == rows),
            "hconcat requires identical row counts"
        );
        let cols: usize = mats.iter().map(|m| m.cols).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            data.extend_from_slice(&m.data);
        }
        Mat { rows, cols, data }
    }

    /// Convert to half precision after multiplying by `scale`
    /// (the paper's overflow-avoiding scale factor, §4.2). Vectorized on
    /// SIMD backends; bit-identical to the scalar `F16::from_f32(v * scale)`.
    pub fn to_f16_scaled(&self, scale: f32) -> MatF16 {
        let mut data = vec![F16::ZERO; self.data.len()];
        crate::f16::narrow_slice_scaled_on(crate::dispatch::active_backend(), &self.data, scale, &mut data);
        MatF16 { rows: self.rows, cols: self.cols, data }
    }

    /// Size in bytes of the f32 payload.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<f32>()
    }

    /// Maximum absolute elementwise difference against `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Mat) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// A dense column-major half-precision matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct MatF16 {
    rows: usize,
    cols: usize,
    data: Vec<F16>,
}

impl MatF16 {
    /// Create a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![F16::ZERO; rows * cols] }
    }

    /// Build from a column-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<F16>) -> Self {
        assert_eq!(data.len(), rows * cols, "column-major data length mismatch");
        Self { rows, cols, data }
    }

    /// Narrow an f32 matrix element-wise (round-to-nearest-even, no scale)
    /// — the 16-bit HGEMM *output* path, as opposed to
    /// [`Mat::to_f16_scaled`] which models scaled operand storage.
    pub fn narrowed(a: &Mat) -> MatF16 {
        let mut data = vec![F16::ZERO; a.data.len()];
        crate::f16::narrow_slice(&a.data, &mut data);
        MatF16 { rows: a.rows, cols: a.cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Contiguous column slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[F16] {
        let start = c * self.rows;
        &self.data[start..start + self.rows]
    }

    /// Underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[F16] {
        &self.data
    }

    /// Widen back to f32, undoing `scale` (i.e. divides by it).
    /// Vectorized on SIMD backends; bit-identical to the scalar
    /// `v.to_f32() * (1.0 / scale)`.
    pub fn to_f32_unscaled(&self, scale: f32) -> Mat {
        let inv = 1.0 / scale;
        let mut data = vec![0.0f32; self.data.len()];
        crate::f16::widen_slice_scaled_on(crate::dispatch::active_backend(), &self.data, inv, &mut data);
        Mat { rows: self.rows, cols: self.cols, data }
    }

    /// True if any stored element overflowed to ±∞ during conversion.
    pub fn has_overflow(&self) -> bool {
        self.data.iter().any(|v| v.is_infinite())
    }

    /// Horizontal concatenation (batched reference matrices, FP16 path).
    ///
    /// # Panics
    /// Panics if row counts differ or the input is empty.
    pub fn hconcat(mats: &[&MatF16]) -> MatF16 {
        assert!(!mats.is_empty(), "hconcat of zero matrices");
        let rows = mats[0].rows;
        assert!(
            mats.iter().all(|m| m.rows == rows),
            "hconcat requires identical row counts"
        );
        let cols: usize = mats.iter().map(|m| m.cols).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            data.extend_from_slice(&m.data);
        }
        MatF16 { rows, cols, data }
    }

    /// Size in bytes of the f16 payload (half of the f32 equivalent).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn col_major_indexing() {
        let m = Mat::from_col_major(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.col(1), &[3., 4.]);
    }

    #[test]
    fn from_fn_matches_get() {
        let m = Mat::from_fn(3, 2, |r, c| (r * 10 + c) as f32);
        for r in 0..3 {
            for c in 0..2 {
                assert_eq!(m.get(r, c), (r * 10 + c) as f32);
            }
        }
    }

    #[test]
    fn set_then_get() {
        let mut m = Mat::zeros(2, 2);
        m.set(1, 0, 7.5);
        assert_eq!(m.get(1, 0), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn hconcat_batches_columns() {
        let a = Mat::from_col_major(2, 1, vec![1., 2.]);
        let b = Mat::from_col_major(2, 2, vec![3., 4., 5., 6.]);
        let c = Mat::hconcat(&[&a, &b]);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.col(0), &[1., 2.]);
        assert_eq!(c.col(2), &[5., 6.]);
    }

    #[test]
    #[should_panic(expected = "identical row counts")]
    fn hconcat_rejects_mismatched_rows() {
        let a = Mat::zeros(2, 1);
        let b = Mat::zeros(3, 1);
        let _ = Mat::hconcat(&[&a, &b]);
    }

    #[test]
    fn f16_roundtrip_with_scale() {
        let m = Mat::from_col_major(2, 2, vec![0.5, 1.0, 2.0, 100.0]);
        let h = m.to_f16_scaled(0.125);
        let back = h.to_f32_unscaled(0.125);
        // These values are exactly representable after scaling.
        assert_eq!(back, m);
    }

    #[test]
    fn f16_overflow_detection() {
        let m = Mat::from_col_major(1, 1, vec![1.0e6]);
        assert!(m.to_f16_scaled(1.0).has_overflow());
        assert!(!m.to_f16_scaled(2.0_f32.powi(-7)).has_overflow());
    }

    #[test]
    fn size_bytes_halves_in_f16() {
        let m = Mat::zeros(128, 768);
        let h = m.to_f16_scaled(1.0);
        assert_eq!(m.size_bytes(), 128 * 768 * 4);
        assert_eq!(h.size_bytes(), 128 * 768 * 2);
    }

    #[test]
    fn max_abs_diff_basic() {
        let a = Mat::from_col_major(1, 2, vec![1.0, 2.0]);
        let b = Mat::from_col_major(1, 2, vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
