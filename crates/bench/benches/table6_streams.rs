//! **Table 6** — multi-stream schedule efficiency (Eq. 4) and extra GPU
//! memory, m = n = 768, FP16, all references host-resident (pinned),
//! batch {512, 256} × streams {1, 2, 4, 8}.

use texid_bench::{heading, row, thousands};
use texid_cache::CacheConfig;
use texid_core::{Engine, EngineConfig};
use texid_gpu::{streams, DeviceSpec, Precision};
use texid_knn::{ExecMode, MatchConfig};
use texid_linalg::Mat;
use texid_sift::FeatureMatrix;

fn speed(batch: usize, n_streams: usize) -> f64 {
    let mut e = Engine::new(EngineConfig {
        device: DeviceSpec::tesla_p100(),
        matching: MatchConfig {
            precision: Precision::F16,
            exec: ExecMode::TimingOnly,
            ..MatchConfig::default()
        },
        m_ref: 768,
        n_query: 768,
        batch_size: batch,
        streams: n_streams,
        cache: CacheConfig {
            host_capacity_bytes: 256 << 30,
            device_reserve_bytes: 15 << 30, // force all batches host-side
            pinned: true,
        },
        rebalance_every: 0,
    });
    for id in 0..(64 * batch) as u64 {
        e.add_reference_shape(id).expect("capacity");
    }
    e.flush().expect("flush");
    let q = FeatureMatrix::from_mat(Mat::zeros(128, 768), true);
    e.search(&q).report.images_per_second()
}

fn main() {
    let spec = DeviceSpec::tesla_p100();
    let theoretical = streams::pcie_bound_speed(&spec, (768 * 128 * 2) as u64, true);

    heading("Table 6: multi-stream scheduling, refs on pinned host memory, P100 (ours [paper])");
    println!(
        "PCIe-bound theoretical speed: {} img/s (paper: 47,592 at 9.6 GB/s)\n",
        thousands(theoretical)
    );
    row(&[
        "batch".to_string(),
        "streams".to_string(),
        "extra GPU mem GB".to_string(),
        "speed img/s".to_string(),
        "efficiency".to_string(),
    ]);

    let paper: &[(usize, usize, f64, f64, f64)] = &[
        (512, 1, 0.989, 24_984.0, 52.5),
        (512, 2, 1.667, 29_459.0, 61.9),
        (512, 4, 3.027, 37_955.0, 79.8),
        (512, 8, 5.819, 41_546.0, 87.3),
        (256, 1, 0.683, 24_554.0, 51.5),
        (256, 2, 0.911, 28_259.0, 59.3),
        (256, 4, 1.701, 36_733.0, 77.2),
        (256, 8, 3.053, 40_310.0, 84.7),
    ];

    for &(batch, s, paper_mem, paper_speed, paper_eff) in paper {
        let sp = speed(batch, s);
        let eff = streams::schedule_efficiency(sp, theoretical) * 100.0;
        let mem = streams::extra_gpu_memory_bytes(s, batch, 768, 768, 128, Precision::F16) as f64
            / 1e9;
        row(&[
            batch.to_string(),
            s.to_string(),
            format!("{mem:.2} [{paper_mem}]"),
            format!("{} [{}]", thousands(sp), thousands(paper_speed)),
            format!("{eff:.1}% [{paper_eff}%]"),
        ]);
    }

    println!(
        "\nShape check: efficiency climbs from ~52% to ~87% as streams overlap the PCIe\n\
         transfers with compute; each extra stream costs its own workspace (matrix A +\n\
         staging buffer) in device memory."
    );
}
