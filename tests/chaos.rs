//! Chaos suite: seeded fault plans against the distributed cluster.
//!
//! Three properties (plus the acceptance scenario and a determinism check):
//!
//! 1. Any plan that leaves at least one shard healthy still returns correct
//!    results for textures living on the healthy shards.
//! 2. `heal()` after crash/corruption plans restores search results
//!    identical to an unfaulted twin cluster.
//! 3. The circuit breaker re-admits a healed shard.
//!
//! All fault plans are seeded and scripted — reruns reproduce the same
//! failure sequences exactly.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use texid_core::EngineConfig;
use texid_distrib::api;
use texid_distrib::cluster::{
    Cluster, ClusterConfig, Quarantine, QuarantineReason, ShardHealth, StoreConfig,
};
use texid_distrib::faults::{FaultPlan, FaultProbs};
use texid_distrib::http::http_call;
use texid_distrib::json::parse;
use texid_image::{CaptureCondition, TextureGenerator};
use texid_sift::{extract, FeatureMatrix, SiftConfig};

fn chaos_config(containers: usize) -> ClusterConfig {
    ClusterConfig {
        containers,
        engine: EngineConfig {
            m_ref: 128,
            n_query: 256,
            batch_size: 2,
            streams: 1,
            ..EngineConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn reference_features(id: u64) -> FeatureMatrix {
    let im = TextureGenerator::with_size(128).generate(id);
    extract(&im, &SiftConfig { max_features: 128, ..SiftConfig::default() })
}

fn query_features(id: u64) -> FeatureMatrix {
    let im = TextureGenerator::with_size(128).generate(id);
    let mut rng = SmallRng::seed_from_u64(id ^ 0x5eed);
    let q = CaptureCondition::mild(&mut rng).apply(&im, id);
    extract(&q, &SiftConfig { max_features: 256, ..SiftConfig::default() })
}

fn populate(cluster: &Cluster, n: u64) {
    for id in 0..n {
        cluster.add_texture(id, &reference_features(id)).unwrap();
    }
}

/// Property 1: with >= 1 healthy shard, textures on healthy shards are
/// still found, under several different crash subsets.
#[test]
fn healthy_shards_keep_answering() {
    // Round-robin placement: id i lives on shard i % 3.
    let crash_sets: &[&[usize]] = &[&[0], &[2], &[0, 1], &[1, 2]];
    for (seed, crashed) in crash_sets.iter().enumerate() {
        let mut plan = FaultPlan::new(seed as u64);
        for &s in *crashed {
            plan = plan.crash_shard(s);
        }
        let cluster = Cluster::with_faults(chaos_config(3), Some(plan));
        populate(&cluster, 6);

        // Pick a texture on a surviving shard.
        let surviving_id = (0..6u64)
            .find(|id| !crashed.contains(&((id % 3) as usize)))
            .expect("some shard survives");
        let out = cluster.search(&query_features(surviving_id), 3);
        assert!(out.degraded, "crash set {crashed:?}");
        assert_eq!(out.shards_failed, crashed.len(), "crash set {crashed:?}");
        assert_eq!(out.shards_ok, 3 - crashed.len());
        assert_eq!(
            out.results[0].0, surviving_id,
            "crash set {crashed:?}: {:?}",
            out.results
        );
    }
}

/// Property 2: after arbitrary crash/corruption fault phases, heal()
/// restores results identical to an unfaulted twin cluster.
#[test]
fn heal_restores_prefault_results() {
    for seed in [3u64, 17, 99] {
        let baseline = Cluster::new(chaos_config(3));
        populate(&baseline, 6);

        // Crashes on two shards, read corruption and transient noise on the
        // KV path. The corruption budget is consumed by get_texture reads
        // during the fault phase (read-side corruption does not mutate the
        // stored bytes), so heal() sees a clean store.
        let plan = FaultPlan::new(seed)
            .crash_shard(seed as usize % 3)
            .crash_shard((seed as usize + 1) % 3)
            .corrupt_kv_reads(1)
            .transient_kv_reads(2);
        let cluster = Cluster::with_faults(chaos_config(3), Some(plan));
        populate(&cluster, 6);

        // Fault phase: the search absorbs the crashes; reads burn through
        // the KV fault budgets (errors are expected and tolerated here).
        let hurt = cluster.search(&query_features(1), 6);
        assert!(hurt.degraded, "seed {seed}");
        assert_eq!(hurt.shards_failed, 2);
        for id in 0..6u64 {
            let _ = cluster.get_texture(id);
        }

        let report = cluster.heal().unwrap();
        assert_eq!(report.healed.len(), 2, "seed {seed}: {report:?}");
        assert!(report.quarantined.is_empty(), "store bytes were never mutated");

        for probe in [0u64, 1, 4] {
            let expected = baseline.search(&query_features(probe), 6);
            let healed = cluster.search(&query_features(probe), 6);
            assert!(!healed.degraded, "seed {seed}");
            assert_eq!(healed.results, expected.results, "seed {seed} probe {probe}");
            assert_eq!(healed.comparisons, expected.comparisons);
        }
    }
}

/// Property 3: a tripped breaker re-admits the shard after heal().
#[test]
fn breaker_readmits_healed_shard() {
    let trip = ClusterConfig::default().resilience.trip_threshold as u64;
    let mut plan = FaultPlan::new(7);
    for _ in 0..trip {
        plan = plan.crash_shard(0);
    }
    let cluster = Cluster::with_faults(chaos_config(2), Some(plan));
    populate(&cluster, 4);

    for i in 0..trip {
        let out = cluster.search(&query_features(0), 2);
        assert_eq!(out.shards_failed, 1, "search {i}");
    }
    assert_eq!(cluster.health()[0].health, ShardHealth::Down);

    // While Down, the shard is skipped, not re-dispatched.
    let out = cluster.search(&query_features(0), 2);
    assert_eq!(out.shards_skipped, 1);
    assert_eq!(out.shards_failed, 0);

    let report = cluster.heal().unwrap();
    assert_eq!(report.healed, vec![0]);
    assert_eq!(cluster.health()[0].health, ShardHealth::Healthy);

    let out = cluster.search(&query_features(0), 2);
    assert!(!out.degraded);
    assert_eq!(out.shards_ok, 2);
    assert_eq!(out.results[0].0, 0);
}

/// The acceptance scenario end to end: crash 1 of 3 shards mid-search,
/// observe a degraded (not panicked) result, heal, verify identical
/// results and an all-healthy REST /health.
#[test]
fn acceptance_crash_heal_roundtrip() {
    // Let the first search through clean, crash shard 1 on the second.
    let plan = FaultPlan::new(42).crash_shard_after(1, 1);
    let cluster = Arc::new(Cluster::with_faults(chaos_config(3), Some(plan)));
    populate(&cluster, 6);

    let prefault = cluster.search(&query_features(4), 3);
    assert!(!prefault.degraded);

    let hurt = cluster.search(&query_features(4), 3);
    assert!(hurt.degraded);
    assert_eq!(hurt.shards_failed, 1);
    assert_eq!(hurt.shards_ok, 2);

    cluster.heal().unwrap();
    let healed = cluster.search(&query_features(4), 3);
    assert_eq!(healed.results, prefault.results);
    assert!(!healed.degraded);

    let server = api::serve(cluster.clone(), "127.0.0.1:0").unwrap();
    let resp = http_call(server.addr(), "GET", "/health", b"").unwrap();
    assert_eq!(resp.status, 200);
    let v = parse(&resp.text()).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"), "{}", resp.text());
    let shards = v.get("shards").unwrap().as_arr().unwrap();
    assert_eq!(shards.len(), 3);
    for s in shards {
        assert_eq!(s.get("health").and_then(|h| h.as_str()), Some("healthy"), "{}", resp.text());
    }
}

/// The durability acceptance scenario end to end: a shard crash plus a
/// torn WAL tail mid-ingest. After `heal()` the replayed shard serves
/// search results bit-identical to an uncrashed control cluster that never
/// saw the torn record, and exactly the torn record is quarantined and
/// counted in the per-shard replay stats.
#[test]
fn acceptance_torn_wal_tail_heals_to_control_cluster() {
    // 6 ids round-robin over 3 shards; id 5 lands on shard 2. Tear the WAL
    // append of the final ingest (append #5, zero-indexed) and crash the
    // shard that owns it. Mid-stream tears cascade misalignment, so the
    // torn-final-record shape is the one torn writes actually produce.
    let plan = FaultPlan::new(2024).tear_wal_append_after(5).crash_shard(2);
    let cluster = Cluster::with_faults(chaos_config(3), Some(plan));
    populate(&cluster, 6);

    // Control: identical cluster, never faulted, never given the torn id.
    let control = Cluster::new(chaos_config(3));
    populate(&control, 5);

    // The crash fires on the next search leg against shard 2.
    let hurt = cluster.search(&query_features(2), 6);
    assert!(hurt.degraded);
    assert_eq!(hurt.shards_failed, 1);

    let report = cluster.heal().unwrap();
    assert_eq!(report.healed, vec![2]);

    // Exactly the torn record is quarantined: the WAL never durably held
    // id 5, so replay surfaces it as Missing (not Corrupt).
    assert_eq!(
        report.quarantined,
        vec![Quarantine { id: 5, reason: QuarantineReason::Missing }]
    );
    let replay = report.replay.as_ref().expect("durable store must replay");
    assert_eq!(replay.wal_records_applied, 5, "{replay:?}");
    assert!(replay.wal_torn_tail_bytes > 0, "{replay:?}");
    assert_eq!(replay.wal_corrupt_skipped, 0, "{replay:?}");
    assert_eq!(report.shards.len(), 1);
    let sr = &report.shards[0];
    assert_eq!((sr.shard, sr.records_replayed, sr.records_quarantined), (2, 1, 1));
    assert!(sr.replay_wall_us >= 0.0);

    // The healed cluster now is the control cluster, bit for bit: same
    // ranked (id, score) lists, same comparison counts, no degradation.
    for probe in 0..5u64 {
        let healed = cluster.search(&query_features(probe), 6);
        let expected = control.search(&query_features(probe), 6);
        assert!(!healed.degraded, "probe {probe}");
        assert_eq!(healed.results, expected.results, "probe {probe}");
        assert_eq!(healed.comparisons, expected.comparisons, "probe {probe}");
    }
    // The torn id is honestly gone, not silently half-present.
    assert!(cluster.get_texture(5).is_err());
}

/// A corrupted snapshot is detected at replay, reported, and the ids whose
/// only durable copy was in that snapshot are quarantined as Missing —
/// while everything still covered by the WAL tail survives the heal.
#[test]
fn corrupt_snapshot_is_reported_and_wal_tail_survives() {
    let config = ClusterConfig {
        store: StoreConfig { durable: true, snapshot_every: 4 },
        ..chaos_config(3)
    };
    // The 4th append triggers compaction; the snapshot write is bit-flipped
    // and the WAL is truncated beneath it, so ids 0..4 exist only in the
    // bad snapshot. Ids 4 and 5 land in the post-snapshot WAL tail.
    let plan = FaultPlan::new(7).corrupt_snapshots(1).crash_shard(0).crash_shard(1).crash_shard(2);
    let cluster = Cluster::with_faults(config, Some(plan));
    populate(&cluster, 6);

    let hurt = cluster.search(&query_features(0), 6);
    assert_eq!(hurt.shards_failed, 3);

    let report = cluster.heal().unwrap();
    assert_eq!(report.healed, vec![0, 1, 2]);
    let replay = report.replay.as_ref().expect("durable store must replay");
    assert!(replay.snapshot_error.is_some(), "{replay:?}");
    assert_eq!(replay.wal_records_applied, 2, "{replay:?}");

    // Ids 0..4 were lost with the snapshot; 4 and 5 replayed from the WAL.
    let mut lost: Vec<u64> = report.quarantined.iter().map(|q| q.id).collect();
    lost.sort_unstable();
    assert_eq!(lost, vec![0, 1, 2, 3]);
    assert!(report
        .quarantined
        .iter()
        .all(|q| q.reason == QuarantineReason::Missing));
    assert_eq!(cluster.get_texture(4).unwrap().len(), reference_features(4).len());
    assert!(cluster.get_texture(0).is_err());

    // Survivors answer: a query for id 4 still identifies it.
    let out = cluster.search(&query_features(4), 6);
    assert!(!out.degraded);
    assert_eq!(out.results[0].0, 4);
}

/// Seeded durability chaos is reproducible: the same seed tears and loses
/// the same WAL appends, and replay quarantines the same id sets.
#[test]
fn durability_chaos_is_deterministic() {
    let probs = FaultProbs {
        torn_write: 0.2,
        crash_before_fsync: 0.2,
        ..FaultProbs::default()
    };
    let run = |seed: u64| -> (Vec<u64>, usize, usize) {
        let plan = FaultPlan::chaos(seed, probs).crash_shard(0).crash_shard(1).crash_shard(2);
        let cluster = Cluster::with_faults(chaos_config(3), Some(plan));
        populate(&cluster, 12);
        let _ = cluster.search(&query_features(0), 6);
        let report = cluster.heal().unwrap();
        let mut ids: Vec<u64> = report.quarantined.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        let replay = report.replay.expect("durable");
        (ids, replay.wal_records_applied, replay.wal_torn_tail_bytes)
    };
    let a = run(0xfee1);
    let b = run(0xfee1);
    assert_eq!(a, b, "same seed must lose the same records");
    assert!(
        !a.0.is_empty(),
        "chaos probabilities too low to exercise durability faults: {a:?}"
    );
}

/// Fault accounting is exactly-once: every retry attempt bumps `/stats`
/// and the Prometheus counter in lockstep, a degraded search is counted
/// once no matter how many legs failed, and per-shard failures count one
/// per failed leg. Private registries keep the numbers exact even when
/// other tests in this process hit the global registry concurrently.
#[test]
fn fault_events_are_recorded_exactly_once() {
    use texid_obs::Registry;
    let counter = |reg: &Registry, name: &str, labels: &[(&str, &str)]| -> u64 {
        // Registration is idempotent, so re-registering returns the same
        // underlying handle the cluster increments.
        reg.counter(name, "", labels).get()
    };

    // Two transient faults inside the retry budget: exactly two retries,
    // zero degraded searches, zero leg failures.
    let reg = Registry::new();
    let plan = FaultPlan::new(3).transient_search(0, 2);
    let cluster = Cluster::with_faults_in_registry(chaos_config(2), Some(plan), &reg);
    populate(&cluster, 4);
    let out = cluster.search(&query_features(0), 2);
    assert!(!out.degraded);
    let stats = cluster.stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(counter(&reg, "texid_cluster_retries", &[]), 2);
    assert_eq!(counter(&reg, "texid_cluster_degraded_searches", &[]), 0);
    assert_eq!(counter(&reg, "texid_shard_failures", &[("shard", "0")]), 0);

    // More transients than the budget: retries stop at max_retries, the
    // leg fails once, and the search degrades once.
    let reg = Registry::new();
    let budget = chaos_config(2).resilience.backoff.max_retries as u64;
    let plan = FaultPlan::new(3).transient_search(0, 10);
    let cluster = Cluster::with_faults_in_registry(chaos_config(2), Some(plan), &reg);
    populate(&cluster, 4);
    let out = cluster.search(&query_features(0), 2);
    assert!(out.degraded);
    assert_eq!(out.shards_failed, 1);
    let stats = cluster.stats();
    assert_eq!(stats.retries, budget);
    assert_eq!(counter(&reg, "texid_cluster_retries", &[]), budget);
    assert_eq!(counter(&reg, "texid_cluster_degraded_searches", &[]), 1);
    assert_eq!(stats.degraded_searches, 1);
    assert_eq!(counter(&reg, "texid_shard_failures", &[("shard", "0")]), 1);
    assert_eq!(counter(&reg, "texid_shard_failures", &[("shard", "1")]), 0);

    // Two shards crash in one search: two leg failures, but still exactly
    // one degraded-search event.
    let reg = Registry::new();
    let plan = FaultPlan::new(9).crash_shard(0).crash_shard(1);
    let cluster = Cluster::with_faults_in_registry(chaos_config(3), Some(plan), &reg);
    populate(&cluster, 6);
    let out = cluster.search(&query_features(2), 3);
    assert!(out.degraded);
    assert_eq!(out.shards_failed, 2);
    assert_eq!(counter(&reg, "texid_cluster_degraded_searches", &[]), 1);
    assert_eq!(cluster.stats().degraded_searches, 1);
    assert_eq!(counter(&reg, "texid_shard_failures", &[("shard", "0")]), 1);
    assert_eq!(counter(&reg, "texid_shard_failures", &[("shard", "1")]), 1);
    assert_eq!(counter(&reg, "texid_shard_failures", &[("shard", "2")]), 0);
    assert_eq!(counter(&reg, "texid_cluster_retries", &[]), 0);
}

/// Same seed => same failure sequence, observable end to end.
#[test]
fn fault_injection_is_deterministic() {
    let probs = FaultProbs {
        shard_crash: 0.25,
        straggler: 0.2,
        transient: 0.2,
        ..FaultProbs::default()
    };
    type Observation = (bool, usize, usize, Vec<(u64, usize)>);
    let run = |seed: u64| -> Vec<Observation> {
        let cluster =
            Cluster::with_faults(chaos_config(3), Some(FaultPlan::chaos(seed, probs)));
        populate(&cluster, 6);
        (0..6)
            .map(|i| {
                let out = cluster.search(&query_features(i % 3), 3);
                (out.degraded, out.shards_failed, out.shards_skipped, out.results)
            })
            .collect()
    };
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a, b, "same seed must reproduce the same failure sequence");
    assert!(
        a.iter().any(|(degraded, ..)| *degraded),
        "chaos probabilities too low to exercise anything: {a:?}"
    );
    let c = run(4321);
    assert_ne!(a, c, "different seeds should explore different schedules");
}
