//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal harness with the same call shape: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_with_input`, `Throughput`,
//! and `Bencher::iter`. Instead of statistical analysis it runs a short
//! calibrated loop and prints a single median-of-runs line per benchmark.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration annotation (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { name: format!("{name}/{parameter}") }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.last_ns_per_iter = elapsed * 1e9 / self.iters as f64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in always takes a fixed
    /// number of timing samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `routine` against `input`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        let tp = self.throughput;
        self.criterion.run_one(&label, tp, |b| routine(b, input));
        self
    }

    /// Benchmark a routine without an explicit input.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        routine: R,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let tp = self.throughput;
        self.criterion.run_one(&label, tp, routine);
        self
    }

    /// Finish the group (printing is incremental; nothing further to do).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: impl Display, routine: R) {
        self.run_one(&name.to_string(), None, routine);
    }

    fn run_one<R: FnMut(&mut Bencher)>(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        mut routine: R,
    ) {
        // Calibrate iteration count to ~50 ms, then take the median of 3.
        let mut bencher = Bencher { iters: 1, last_ns_per_iter: 0.0 };
        routine(&mut bencher);
        let warm_ns = bencher.last_ns_per_iter.max(1.0);
        let iters = ((50e6 / warm_ns) as u64).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(3);
        for _ in 0..3 {
            let mut b = Bencher { iters, last_ns_per_iter: 0.0 };
            routine(&mut b);
            samples.push(b.last_ns_per_iter);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[1];
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (median * 1e-9);
                println!("{label}: {median:.1} ns/iter ({rate:.3e} elem/s)");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (median * 1e-9) / (1 << 30) as f64;
                println!("{label}: {median:.1} ns/iter ({rate:.2} GiB/s)");
            }
            None => println!("{label}: {median:.1} ns/iter"),
        }
    }

    /// Accept and ignore CLI arguments (API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// No-op (API compatibility).
    pub fn final_summary(&self) {}
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }
}
