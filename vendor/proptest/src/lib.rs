//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! deterministic mini property-testing harness with the same API shape as
//! the `proptest` 1.x surface the test suites use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, tuple and range strategies, `any::<T>()`,
//! `prop::collection::{vec, btree_map}`, regex-ish string strategies, and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest, on purpose:
//! * **No shrinking** — a failing case reports its seed and values, but is
//!   not minimized.
//! * **Fully deterministic** — case N of test T draws from a stream seeded
//!   by `hash(T) ⊕ N`; there is no OS entropy and no persistence file.

pub mod test_runner {
    //! Execution config and the deterministic RNG behind every strategy.

    /// Run configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Real proptest defaults to 256; the stand-in trims that to keep
            // the suite fast on CPU-bound extraction/matching properties.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream used by all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a over the bytes).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Independent per-case stream.
        pub fn fork(&self, case: u64) -> TestRng {
            let mut forked = TestRng { state: self.state ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) };
            forked.next_u64(); // decorrelate adjacent cases
            forked
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draw one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Depth-limited recursive strategy: `self` is the leaf, `recurse`
        /// wraps an inner strategy into a branch. `desired_size` and
        /// `expected_branch_size` are accepted for API compatibility.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut level = self.boxed();
            let mut levels = vec![level.clone()];
            for _ in 0..depth {
                level = recurse(level).boxed();
                levels.push(level.clone());
            }
            Recursive { levels }
        }

        /// Type-erase into a clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased, clonable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_flat_map` combinator.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one alternative.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// `prop_recursive` combinator: a uniform choice of nesting depth.
    pub struct Recursive<T> {
        levels: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.levels.len() as u64) as usize;
            self.levels[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }

    /// Pattern strings are string strategies (a pragmatic regex subset:
    /// literals, `[...]` classes with ranges and escapes, `\PC` for any
    /// printable char, and `{m,n}` repetition).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn printable_pool() -> Vec<char> {
        // ASCII printables plus a few multibyte chars to exercise UTF-8
        // handling in parsers under test.
        let mut pool: Vec<char> = (0x20u8..=0x7e).map(|b| b as char).collect();
        pool.extend(['é', 'Ω', '語', '🦀']);
        pool
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut out = String::new();
        while i < chars.len() {
            let pool: Vec<char> = match chars[i] {
                '[' => {
                    let mut class = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            match chars[i] {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            }
                        } else {
                            chars[i]
                        };
                        // Range like a-z (a '-' not at class end, not escaped).
                        if i + 2 < chars.len()
                            && chars[i] != '\\'
                            && chars[i + 1] == '-'
                            && chars[i + 2] != ']'
                        {
                            let hi = chars[i + 2];
                            for v in (c as u32)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(v) {
                                    class.push(ch);
                                }
                            }
                            i += 3;
                        } else {
                            class.push(c);
                            i += 1;
                        }
                    }
                    i += 1; // closing ']'
                    class
                }
                '\\' if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' => {
                    i += 3;
                    printable_pool()
                }
                '\\' if i + 1 < chars.len() => {
                    i += 1;
                    let c = match chars[i] {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    i += 1;
                    vec![c]
                }
                literal => {
                    i += 1;
                    vec![literal]
                }
            };
            // Optional {m,n} / {m} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p);
                let close = close.expect("unclosed {} in pattern");
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().unwrap_or(0),
                        n.trim().parse::<usize>().unwrap_or(0),
                    ),
                    None => {
                        let exact = spec.trim().parse::<usize>().unwrap_or(1);
                        (exact, exact)
                    }
                }
            } else {
                (1, 1)
            };
            debug_assert!(lo <= hi, "bad repetition in pattern");
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            if pool.is_empty() {
                continue;
            }
            for _ in 0..count {
                out.push(pool[rng.below(pool.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            rng.unit_f64() as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes from `size` (a `usize` or usize range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap` strategy; duplicate keys may shrink the final size.
    pub fn btree_map<K, V>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.sample(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < target && attempts < target * 10 + 10 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the test suites expect.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` namespace alias.
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let base = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let mut rng = base.fork(case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        msg
                    );
                }
            }
        }
    )*};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert inside a property; on failure the case (not the process) fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert!({}) failed", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn determinism_same_name_same_values() {
        let strat = (0u64..1000, prop::collection::vec(0i32..10, 2..6));
        let mut a = TestRng::deterministic("x").fork(3);
        let mut b = TestRng::deterministic("x").fork(3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn string_pattern_class_and_repetition() {
        let mut rng = TestRng::deterministic("pat");
        for _ in 0..100 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let p = "\\PC{0,8}".generate(&mut rng);
            assert!(p.chars().count() <= 8);
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");
        }
    }

    #[test]
    fn oneof_and_recursive_produce_all_levels() {
        #[derive(Clone, Debug, PartialEq)]
        enum T {
            Leaf(bool),
            Node(Vec<T>),
        }
        let strat = any::<bool>().prop_map(T::Leaf).prop_recursive(3, 8, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut rng = TestRng::deterministic("rec");
        let mut saw_leaf = false;
        let mut saw_node = false;
        for _ in 0..100 {
            match strat.generate(&mut rng) {
                T::Leaf(_) => saw_leaf = true,
                T::Node(_) => saw_node = true,
            }
        }
        assert!(saw_leaf && saw_node);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(v in prop::collection::vec(1u8..20, 0..10), flip in any::<bool>()) {
            prop_assume!(v.len() != 9);
            let total: u32 = v.iter().map(|&b| b as u32).sum();
            prop_assert!(total <= 19 * 9, "total {total}");
            prop_assert_eq!(flip as u8 <= 1, true);
        }
    }
}
