//! **Table 5** — search speed with the reference cache in GPU memory vs
//! host memory (pageable / pinned), batch 1024, m = n = 768, FP16, PCIe
//! Gen3 ×16.
//!
//! Exercises the real engine + hybrid cache: the GPU-memory row indexes few
//! enough references to stay device-resident; the host rows use a device
//! reserve so large that every batch is swapped to host and must stream
//! over PCIe per search.

use texid_bench::{heading, row, thousands};
use texid_cache::CacheConfig;
use texid_core::{Engine, EngineConfig};
use texid_gpu::{DeviceSpec, Precision};
use texid_knn::{ExecMode, MatchConfig};
use texid_sift::FeatureMatrix;
use texid_linalg::Mat;

fn engine(device_resident: bool, pinned: bool) -> Engine {
    Engine::new(EngineConfig {
        device: DeviceSpec::tesla_p100(),
        matching: MatchConfig {
            precision: Precision::F16,
            exec: ExecMode::TimingOnly,
            ..MatchConfig::default()
        },
        m_ref: 768,
        n_query: 768,
        batch_size: 1024,
        streams: 1,
        cache: CacheConfig {
            host_capacity_bytes: 256 << 30,
            // A huge reserve forces every batch to swap out to host.
            device_reserve_bytes: if device_resident { 2 << 30 } else { 15 << 30 },
            pinned,
        },
        rebalance_every: 0,
    })
}

fn run(device_resident: bool, pinned: bool) -> (f64, usize, usize) {
    let mut e = engine(device_resident, pinned);
    // 48 batches of 1024 references (phantom: timing only).
    for id in 0..48 * 1024u64 {
        e.add_reference_shape(id).expect("cache capacity");
    }
    e.flush().expect("flush");
    let q = FeatureMatrix::from_mat(Mat::zeros(128, 768), true);
    let r = e.search(&q);
    (r.report.images_per_second(), r.report.device_batches, r.report.host_batches)
}

fn main() {
    heading("Table 5: hybrid memory cache, batch 1024, m=n=768, FP16, P100 (ours [paper])");
    row(&[
        "cache tier".to_string(),
        "speed img/s".to_string(),
        "device batches".to_string(),
        "host batches".to_string(),
    ]);

    let cases = [
        ("GPU memory", true, true, 45_539.0),
        ("Host w/o pinned", false, false, 17_619.0),
        ("Host w/ pinned", false, true, 25_362.0),
    ];
    for (label, dev, pinned, paper) in cases {
        let (speed, db, hb) = run(dev, pinned);
        row(&[
            label.to_string(),
            format!("{} [{}]", thousands(speed), thousands(paper)),
            db.to_string(),
            hb.to_string(),
        ]);
    }

    println!(
        "\nShape check: host residency costs ~45% of the throughput (paper: 43.9% drop with\n\
         pinned memory); pageable memory costs another ~30% (extra host-side staging copy)."
    );
}
