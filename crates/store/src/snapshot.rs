//! Checksummed snapshots: the compacted image of the store.
//!
//! A snapshot is the full key→value map serialized as one blob so the WAL
//! can be truncated behind it ([`crate::log`] owns that dance). The format
//! is self-verifying — a trailing CRC32C over everything before it — so
//! replay can tell a good snapshot from a truncated or bit-flipped one
//! instead of silently loading garbage:
//!
//! ```text
//! magic: b"TXSN" | version: u32 LE | count: u64 LE
//! entries: [key_len: varint | key | val_len: varint | val] * count
//! crc: u32 LE  (CRC32C of every preceding byte)
//! ```
//!
//! An empty blob means "no snapshot yet" and decodes to an empty map; any
//! other damage is a typed [`SnapshotError`], which replay reports and
//! survives by falling back to whatever the WAL still holds.

use crate::crc::crc32c;
use crate::wal::{get_varint, put_varint};
use std::collections::BTreeMap;

const MAGIC: &[u8; 4] = b"TXSN";
const VERSION: u32 = 1;

/// Why a snapshot blob could not be loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Blob ends before its own framing says it should.
    Truncated,
    /// Leading magic is not `TXSN` — not a snapshot at all.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Trailing CRC32C does not match the content.
    BadCrc,
    /// Framing is intact but an entry violates the grammar.
    BadEntry,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "snapshot has bad magic"),
            SnapshotError::BadVersion(v) => write!(f, "snapshot version {v} unsupported"),
            SnapshotError::BadCrc => write!(f, "snapshot checksum mismatch"),
            SnapshotError::BadEntry => write!(f, "snapshot entry malformed"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialize `entries` as a checksummed snapshot blob.
pub fn encode(entries: &BTreeMap<String, Vec<u8>>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (key, val) in entries {
        put_varint(&mut out, key.len() as u64);
        out.extend_from_slice(key.as_bytes());
        put_varint(&mut out, val.len() as u64);
        out.extend_from_slice(val);
    }
    let crc = crc32c(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Verify and load a snapshot blob. An empty blob is an empty map.
///
/// # Errors
/// A typed [`SnapshotError`] describing the damage; never panics on
/// arbitrary input.
pub fn decode(bytes: &[u8]) -> Result<BTreeMap<String, Vec<u8>>, SnapshotError> {
    if bytes.is_empty() {
        return Ok(BTreeMap::new());
    }
    if bytes.len() < MAGIC.len() + 4 + 8 + 4 {
        return Err(SnapshotError::Truncated);
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if &body[..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(body[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    if crc32c(body) != stored_crc {
        return Err(SnapshotError::BadCrc);
    }
    let count = u64::from_le_bytes(body[8..16].try_into().unwrap());
    let mut pos = 16;
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let key_len = get_varint(body, &mut pos).ok_or(SnapshotError::BadEntry)? as usize;
        let key_end = pos.checked_add(key_len).ok_or(SnapshotError::BadEntry)?;
        let key_bytes = body.get(pos..key_end).ok_or(SnapshotError::BadEntry)?;
        let key = std::str::from_utf8(key_bytes).map_err(|_| SnapshotError::BadEntry)?.to_string();
        pos = key_end;
        let val_len = get_varint(body, &mut pos).ok_or(SnapshotError::BadEntry)? as usize;
        let val_end = pos.checked_add(val_len).ok_or(SnapshotError::BadEntry)?;
        let val = body.get(pos..val_end).ok_or(SnapshotError::BadEntry)?.to_vec();
        pos = val_end;
        map.insert(key, val);
    }
    if pos != body.len() {
        return Err(SnapshotError::BadEntry);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BTreeMap<String, Vec<u8>> {
        let mut m = BTreeMap::new();
        m.insert("feat:0001".to_string(), vec![1u8, 2, 3]);
        m.insert("feat:0002".to_string(), vec![0u8; 300]);
        m.insert("meta".to_string(), Vec::new());
        m
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(decode(&encode(&m)).unwrap(), m);
        assert_eq!(decode(&encode(&BTreeMap::new())).unwrap(), BTreeMap::new());
    }

    #[test]
    fn empty_blob_is_empty_map() {
        assert_eq!(decode(&[]).unwrap(), BTreeMap::new());
    }

    #[test]
    fn truncation_detected() {
        let blob = encode(&sample());
        for cut in [1, 5, 17, blob.len() - 1] {
            let err = decode(&blob[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadCrc),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bit_flip_detected() {
        let blob = encode(&sample());
        for off in [0, 4, 9, 20, blob.len() - 1] {
            let mut bad = blob.clone();
            bad[off] ^= 0x01;
            assert!(decode(&bad).is_err(), "offset {off} accepted");
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut blob = encode(&sample());
        blob[0] = b'X';
        assert_eq!(decode(&blob).unwrap_err(), SnapshotError::BadMagic);

        let mut v2 = encode(&BTreeMap::new());
        v2[4] = 2;
        // Re-seal the CRC so the version check is what fires.
        let body_len = v2.len() - 4;
        let crc = crate::crc::crc32c(&v2[..body_len]);
        v2[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&v2).unwrap_err(), SnapshotError::BadVersion(2));
    }
}
