//! Cross-crate integration tests for the distributed system: cluster vs
//! single engine equivalence, persistence via the feature store, and the
//! REST API end-to-end.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use texid_core::{Engine, EngineConfig};
use texid_distrib::api;
use texid_distrib::b64;
use texid_distrib::cluster::{Cluster, ClusterConfig};
use texid_distrib::http::http_call;
use texid_distrib::json::parse;
use texid_distrib::wire;
use texid_image::{CaptureCondition, TextureGenerator};
use texid_sift::{extract, FeatureMatrix, SiftConfig};

fn engine_config() -> EngineConfig {
    EngineConfig { m_ref: 192, n_query: 384, batch_size: 3, streams: 1, ..EngineConfig::default() }
}

fn reference_features(id: u64) -> FeatureMatrix {
    let im = TextureGenerator::with_size(160).generate(id);
    extract(&im, &SiftConfig { max_features: 192, ..SiftConfig::default() })
}

fn query_features(id: u64, seed: u64) -> FeatureMatrix {
    let im = TextureGenerator::with_size(160).generate(id);
    let mut rng = SmallRng::seed_from_u64(seed);
    let q = CaptureCondition::mild(&mut rng).apply(&im, seed);
    extract(&q, &SiftConfig { max_features: 384, ..SiftConfig::default() })
}

#[test]
fn cluster_matches_single_engine_results() {
    const N: u64 = 9;
    let refs: Vec<FeatureMatrix> = (0..N).map(reference_features).collect();

    let mut single = Engine::new(engine_config());
    for (id, f) in refs.iter().enumerate() {
        single.add_reference(id as u64, f).unwrap();
    }
    single.flush().unwrap();

    let cluster = Cluster::new(ClusterConfig { containers: 3, engine: engine_config(), ..ClusterConfig::default() });
    for (id, f) in refs.iter().enumerate() {
        cluster.add_texture(id as u64, f).unwrap();
    }

    for trial in 0..3u64 {
        let q = query_features(trial * 4 % N, 70 + trial);
        let single_result = single.search(&q);
        let cluster_result = cluster.search(&q, N as usize);
        // Same winner and same per-reference scores, regardless of sharding.
        assert_eq!(single_result.ranked[0].0, cluster_result.results[0].0);
        let mut single_sorted = single_result.ranked.clone();
        single_sorted.sort();
        let mut cluster_sorted = cluster_result.results.clone();
        cluster_sorted.sort();
        assert_eq!(single_sorted, cluster_sorted, "trial {trial}");
    }
}

#[test]
fn features_survive_store_serialization() {
    // What goes through the Redis substrate + wire codec must reproduce
    // identical search behaviour.
    let cluster = Cluster::new(ClusterConfig { containers: 2, engine: engine_config(), ..ClusterConfig::default() });
    for id in 0..4u64 {
        cluster.add_texture(id, &reference_features(id)).unwrap();
    }
    for id in 0..4u64 {
        let restored = cluster.get_texture(id).unwrap();
        let original = reference_features(id);
        assert_eq!(restored.mat, original.mat, "texture {id} matrix drifted");
        assert_eq!(restored.keypoints.len(), original.keypoints.len());
    }
}

#[test]
fn rest_api_identifies_over_http() {
    let cluster = Arc::new(Cluster::new(ClusterConfig { containers: 2, engine: engine_config(), ..ClusterConfig::default() }));
    let server = api::serve(cluster, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    for id in 0..5u64 {
        let payload = b64::encode(&wire::encode_features(&reference_features(id)));
        let body = format!(r#"{{"id": {id}, "features": "{payload}"}}"#);
        assert_eq!(http_call(addr, "POST", "/textures", body.as_bytes()).unwrap().status, 201);
    }

    let payload = b64::encode(&wire::encode_features(&query_features(3, 11)));
    let body = format!(r#"{{"features": "{payload}", "top": 2}}"#);
    let resp = http_call(addr, "POST", "/search", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    let v = parse(&resp.text()).unwrap();
    let results = v.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results[0].get("id").unwrap().as_u64(), Some(3), "{}", resp.text());
    assert_eq!(v.get("comparisons").unwrap().as_u64(), Some(5));
}

#[test]
fn crud_lifecycle_consistency() {
    let cluster = Cluster::new(ClusterConfig { containers: 2, engine: engine_config(), ..ClusterConfig::default() });
    for id in 0..6u64 {
        cluster.add_texture(id, &reference_features(id)).unwrap();
    }
    assert_eq!(cluster.len(), 6);

    // Delete 2: it disappears from results even though the engine still
    // holds the batch (tombstone masking).
    cluster.delete_texture(2).unwrap();
    let out = cluster.search(&query_features(2, 5), 6);
    assert!(out.results.iter().all(|(id, _)| *id != 2));

    // Re-add it: searchable again.
    cluster.add_texture(2, &reference_features(2)).unwrap();
    let out = cluster.search(&query_features(2, 6), 6);
    assert_eq!(out.results[0].0, 2);

    // Update 4 with the features of a *different* texture: a query for the
    // old texture 4 must no longer match id 4 meaningfully (the stale
    // engine entry is retired with its internal key).
    cluster.update_texture(4, &reference_features(40)).unwrap();
    let out = cluster.search(&query_features(4, 7), 6);
    let score4 = out.results.iter().find(|(id, _)| *id == 4).map_or(0, |(_, s)| *s);
    assert!(score4 < 10, "stale texture 4 still matches: {:?}", out.results);
    // ... but a query for texture 40's surface finds id 4 now.
    let out = cluster.search(&query_features(40, 8), 6);
    assert_eq!(out.results[0].0, 4, "{:?}", out.results);
}

#[test]
fn scatter_gather_timing_model() {
    // With balanced shards, adding containers divides per-shard work, so
    // the simulated wall time drops roughly linearly.
    let refs: Vec<FeatureMatrix> = (0..12).map(reference_features).collect();
    let wall = |containers: usize| {
        let cluster = Cluster::new(ClusterConfig { containers, engine: engine_config(), ..ClusterConfig::default() });
        for (id, f) in refs.iter().enumerate() {
            cluster.add_texture(id as u64, f).unwrap();
        }
        cluster.search(&query_features(0, 9), 1).wall_us
    };
    let w1 = wall(1);
    let w4 = wall(4);
    assert!(w4 < w1 * 0.5, "scatter-gather failed to parallelize: {w1} -> {w4}");
}
