//! **Table 2** — FP16 compression error (Eq. 2) and search accuracy across
//! scale factors.
//!
//! Faithfulness notes:
//! * Descriptors follow the OpenCV convention of a ×512 integer range
//!   (the paper extracts with OpenCV SIFT), so the *effective* operand
//!   scale is `512 · scale_factor`.
//! * Overflow happens in the FP16-accumulating HGEMM (`CUBLAS_COMPUTE_16F`):
//!   unit-norm RootSIFT vectors give `|−2·rᵀq| ≤ 2·(512·s)²`, which exceeds
//!   the f16 maximum (65504) exactly for s ≥ 2⁻¹ — reproducing the paper's
//!   "overflow" cells.
//! * Accuracy is real: the full extract→match→score pipeline on the
//!   synthetic tea-brick stand-in dataset (smaller than the paper's 300 k,
//!   so absolute accuracy differs; the *flatness* across 2⁻² … 2⁻¹² and the
//!   degradation beyond are the reproduced shape).

use texid_bench::{heading, row};
use texid_core::eval::{build_dataset, compression_error, top1_accuracy, EvalConfig, Severity};
use texid_gpu::Precision;
use texid_knn::{ExecMode, MatchConfig};
use texid_linalg::gemm::gemm_at_b_f16acc;

/// OpenCV stores SIFT descriptors in a 0..~512 integer range.
const OPENCV_RANGE: f32 = 512.0;

fn main() {
    let cfg = EvalConfig {
        n_refs: 24,
        n_queries: 16,
        image_size: 256,
        m_ref: 384,
        n_query: 768,
        seed: 0x7ab1e2,
        severity: Severity::Mild,
        fine_grained: false,
        rootsift: true,
    };
    eprintln!(
        "building dataset ({} refs, {} queries, {}x{}) ...",
        cfg.n_refs, cfg.n_queries, cfg.image_size, cfg.image_size
    );
    let ds = build_dataset(&cfg);

    // Full-precision baseline accuracy.
    let f32_cfg = MatchConfig { precision: Precision::F32, exec: ExecMode::Full, ..MatchConfig::default() };
    let base_acc = top1_accuracy(&ds, &f32_cfg);

    heading("Table 2: FP16 compression error & accuracy vs scale factor (paper values in [])");
    row(&[
        "scale".to_string(),
        "overflow?".to_string(),
        "comp error".to_string(),
        "accuracy".to_string(),
        "paper err".to_string(),
        "paper acc".to_string(),
    ]);
    println!(
        "{:>14} | {:>14} | {:>14} | {:>13.2}% | {:>14} | {:>14}",
        "full precision", "-", "-", base_acc * 100.0, "-", "98.58%"
    );

    let cases: [(&str, i32, &str, &str); 7] = [
        ("1", 0, "overflow", "-"),
        ("2^-1", -1, "overflow", "-"),
        ("2^-2", -2, "0.1026%", "98.58%"),
        ("2^-7", -7, "0.1026%", "98.58%"),
        ("2^-12", -12, "0.1026%", "98.58%"),
        ("2^-14", -14, "0.1043%", "98.31%"),
        ("2^-16", -16, "0.3492%", "98.31%"),
    ];

    for (label, exp, paper_err, paper_acc) in cases {
        let s = 2.0_f32.powi(exp);
        let eff_scale = OPENCV_RANGE * s;

        // Overflow probe: FP16-accumulating −2·RᵀQ on one real pair.
        let r16 = ds.refs[0].mat.to_f16_scaled(eff_scale);
        let q16 = ds.queries[0].0.mat.to_f16_scaled(eff_scale);
        let (_, overflowed) = gemm_at_b_f16acc(-2.0, &r16, &q16);

        if overflowed {
            row(&[
                label.to_string(),
                "OVERFLOW".to_string(),
                "-".to_string(),
                "-".to_string(),
                paper_err.to_string(),
                paper_acc.to_string(),
            ]);
            continue;
        }

        let err = compression_error(&ds, eff_scale, 8);
        let f16_cfg = MatchConfig {
            precision: Precision::F16,
            scale: eff_scale,
            exec: ExecMode::Full,
            ..MatchConfig::default()
        };
        let acc = top1_accuracy(&ds, &f16_cfg);
        row(&[
            label.to_string(),
            "no".to_string(),
            format!("{:.4}%", err * 100.0),
            format!("{:.2}%", acc * 100.0),
            paper_err.to_string(),
            paper_acc.to_string(),
        ]);
    }

    println!(
        "\nShape check: overflow at s >= 2^-1, flat ~0.1% error through 2^-12, rising error at\n\
         2^-14/2^-16 (subnormal underflow), accuracy tracking the full-precision baseline."
    );
}
