//! Fixed-bucket latency histograms with percentile extraction, a running
//! max, and per-bucket OpenMetrics exemplars.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency bucket upper bounds, in microseconds: 1 µs … 10 s in a
/// 1–2–5 ladder. Wide enough for a single kernel launch (~µs) through a
/// degraded full-cluster scatter-gather (~s).
pub const DEFAULT_LATENCY_BUCKETS_US: [f64; 22] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5,
    2e5, 5e5, 1e6, 2e6, 5e6, 1e7,
];

/// Fixed-point scale for the running sum: 1/1000 of a unit, so
/// microsecond observations keep nanosecond resolution in a `u64`.
const SUM_SCALE: f64 = 1000.0;

struct Inner {
    /// Finite upper bounds, strictly increasing. An implicit `+Inf`
    /// overflow bucket follows the last one.
    bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`
    /// (the final slot is the overflow bucket).
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_scaled: AtomicU64,
    /// Largest non-negative observation so far, stored as `f64::to_bits`
    /// (order-preserving for non-negative floats, so `fetch_max` works).
    max_bits: AtomicU64,
    /// Per-bucket exemplar cells: the most recent `(trace_id, value)`
    /// stamped into that bucket via [`Histogram::record_exemplar`]
    /// (`trace_id == 0` means unset). One per bucket including overflow.
    exemplars: Vec<Mutex<(u128, f64)>>,
}

/// A lock-free histogram over fixed bucket boundaries.
///
/// [`Histogram::observe`] is a short linear scan (the default ladder has
/// 22 buckets) plus three relaxed atomic adds — no locks, no allocation.
/// Quantiles are extracted by walking the cumulative counts and linearly
/// interpolating inside the bucket containing the requested rank.
///
/// ```
/// use texid_obs::Histogram;
///
/// let h = Histogram::with_bounds(&[10.0, 20.0, 50.0]);
/// for v in [4.0, 12.0, 13.0, 45.0] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.5) > 10.0 && h.quantile(0.5) <= 20.0);
/// ```
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Histogram {
    /// A histogram over [`DEFAULT_LATENCY_BUCKETS_US`].
    pub fn new_latency() -> Histogram {
        Histogram::with_bounds(&DEFAULT_LATENCY_BUCKETS_US)
    }

    /// A histogram over the given finite upper bounds (an `+Inf` overflow
    /// bucket is always appended).
    ///
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly increasing.
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite and strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        let exemplars = (0..=bounds.len()).map(|_| Mutex::new((0u128, 0.0f64))).collect();
        Histogram {
            inner: Arc::new(Inner {
                bounds: bounds.to_vec(),
                counts,
                count: AtomicU64::new(0),
                sum_scaled: AtomicU64::new(0),
                max_bits: AtomicU64::new(0),
                exemplars,
            }),
        }
    }

    /// Bucket index for a value (`le` semantics; last slot is overflow).
    fn bucket_of(&self, v: f64) -> usize {
        self.inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len())
    }

    /// Record one observation. A value exactly on a bound falls into that
    /// bucket (bounds are inclusive upper limits, `le` semantics).
    pub fn observe(&self, v: f64) {
        let i = self.bucket_of(v);
        self.inner.counts[i].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let scaled = (v.max(0.0) * SUM_SCALE).round() as u64;
        self.inner.sum_scaled.fetch_add(scaled, Ordering::Relaxed);
        // Non-negative f64 bit patterns order like the floats themselves,
        // so one relaxed fetch_max keeps the running maximum lock-free.
        self.inner.max_bits.fetch_max(v.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// Stamp an exemplar — the trace id of a request whose observation
    /// landed (or would land) in `v`'s bucket — **without** recounting the
    /// value. Callers that already fed `v` through [`Histogram::observe`]
    /// (possibly from another handle to the same series) use this to link
    /// the bucket to `GET /trace/{id}` with no double counting.
    ///
    /// The stamp is best-effort: a contended cell is skipped rather than
    /// blocking the hot path, and `trace_id == 0` stamps are ignored.
    pub fn record_exemplar(&self, v: f64, trace_id: u128) {
        if trace_id == 0 {
            return;
        }
        if let Ok(mut cell) = self.inner.exemplars[self.bucket_of(v)].try_lock() {
            *cell = (trace_id, v);
        }
    }

    /// The exemplar stamped into bucket `i` (overflow bucket last), or
    /// `None` when the bucket never received one.
    pub fn exemplar(&self, i: usize) -> Option<(u128, f64)> {
        let cell = self.inner.exemplars.get(i)?.lock().ok()?;
        (cell.0 != 0).then_some(*cell)
    }

    /// Largest observation so far (0 when empty; negative observations
    /// clamp to 0, matching the sum's behavior). Rendered in exposition as
    /// the `_max` series, so observations past the top finite bucket keep
    /// their magnitude instead of vanishing into `le="+Inf"`.
    pub fn max(&self) -> f64 {
        f64::from_bits(self.inner.max_bits.load(Ordering::Relaxed))
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (to 1/1000 resolution).
    pub fn sum(&self) -> f64 {
        self.inner.sum_scaled.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum() / n as f64
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Per-bucket counts (non-cumulative), overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Estimate the `q`-quantile (`0 < q <= 1`) by cumulative walk with
    /// linear interpolation inside the target bucket. Returns 0 when the
    /// histogram is empty; observations in the overflow bucket report the
    /// last finite bound (a conservative lower estimate, like Prometheus'
    /// `histogram_quantile`).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.inner.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            cum += n;
            if cum >= rank {
                let last = self.inner.bounds.len();
                if i == last {
                    return self.inner.bounds[last - 1];
                }
                let lower = if i == 0 { 0.0 } else { self.inner.bounds[i - 1] };
                let upper = self.inner.bounds[i];
                let into_bucket = (rank - (cum - n)) as f64 / n as f64;
                return lower + (upper - lower) * into_bucket;
            }
        }
        self.inner.bounds[self.inner.bounds.len() - 1]
    }

    /// Median (p50).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_fall_in_their_bucket() {
        // `le` semantics: a value exactly on a bound belongs to that bucket.
        let h = Histogram::with_bounds(&[10.0, 20.0, 50.0]);
        h.observe(10.0); // first bucket
        h.observe(10.000001); // second bucket
        h.observe(50.0); // third bucket
        h.observe(50.1); // overflow
        assert_eq!(h.bucket_counts(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn zero_and_negative_values_hit_first_bucket() {
        let h = Histogram::with_bounds(&[1.0, 10.0]);
        h.observe(0.0);
        h.observe(-3.0); // clock skew paranoia: counted, clamped in the sum
        assert_eq!(h.bucket_counts(), vec![2, 0, 0]);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn sum_and_mean_track_observations() {
        let h = Histogram::with_bounds(&[100.0]);
        h.observe(2.5);
        h.observe(7.5);
        assert_eq!(h.sum(), 10.0);
        assert_eq!(h.mean(), 5.0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn quantiles_interpolate_within_bucket() {
        // 100 uniform observations 1..=100 over decade bounds.
        let bounds: Vec<f64> = (1..=10).map(|i| (i * 10) as f64).collect();
        let h = Histogram::with_bounds(&bounds);
        for v in 1..=100 {
            h.observe(v as f64);
        }
        // p50 lands in the (40, 50] bucket, interpolated to its top.
        let p50 = h.p50();
        assert!((40.0..=50.0).contains(&p50), "p50 = {p50}");
        let p95 = h.p95();
        assert!((90.0..=100.0).contains(&p95), "p95 = {p95}");
        let p99 = h.p99();
        assert!(p99 > p95, "p99 {p99} <= p95 {p95}");
        // Exact interpolation check: rank 50 is the 10th of 10 obs in
        // (40, 50] => 40 + 10 * (10/10) = 50.
        assert!((p50 - 50.0).abs() < 1e-9, "p50 = {p50}");
    }

    #[test]
    fn overflow_quantile_reports_last_finite_bound() {
        let h = Histogram::with_bounds(&[10.0, 20.0]);
        for _ in 0..10 {
            h.observe(1000.0);
        }
        assert_eq!(h.quantile(0.99), 20.0);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new_latency();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::with_bounds(&[10.0, 5.0]);
    }

    #[test]
    fn running_max_tracks_largest_observation() {
        let h = Histogram::with_bounds(&[10.0, 20.0]);
        assert_eq!(h.max(), 0.0, "empty histogram reports 0");
        h.observe(5.0);
        h.observe(12_345.0); // past the top bucket: magnitude must survive
        h.observe(7.0);
        h.observe(-3.0); // clamped like the sum
        assert_eq!(h.max(), 12_345.0);
    }

    #[test]
    fn exemplars_stamp_without_recounting() {
        let h = Histogram::with_bounds(&[10.0, 20.0]);
        h.observe(15.0);
        h.record_exemplar(15.0, 0xabc);
        assert_eq!(h.count(), 1, "record_exemplar must not recount");
        assert_eq!(h.exemplar(1), Some((0xabc, 15.0)));
        assert_eq!(h.exemplar(0), None, "untouched bucket has no exemplar");
        // Most recent stamp wins; zero trace ids are ignored.
        h.record_exemplar(12.0, 0xdef);
        h.record_exemplar(13.0, 0);
        assert_eq!(h.exemplar(1), Some((0xdef, 12.0)));
        // Overflow bucket takes exemplars too.
        h.record_exemplar(999.0, 0x123);
        assert_eq!(h.exemplar(2), Some((0x123, 999.0)));
    }

    #[test]
    fn default_ladder_covers_search_latencies() {
        let b = DEFAULT_LATENCY_BUCKETS_US;
        assert_eq!(b[0], 1.0);
        assert_eq!(b[b.len() - 1], 1e7);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }
}
