//! Flight recorder: a bounded, lock-free ring of per-query "wide events".
//!
//! Every cluster search emits exactly one [`WideEvent`] — a single
//! structured record that carries everything an operator needs to triage
//! that query after the fact: trace id, outcome, shard fan-out results,
//! coalescing group size, per-stage sim timings, and retry/degraded
//! flags. The ring keeps the most recent `capacity` events; when writers
//! outpace readers the *oldest* records are overwritten and a dropped
//! counter advances exactly once per lost record, mirroring the span
//! ring in [`crate::trace`].
//!
//! The recorder is deliberately "wide and shallow": one row per query,
//! denormalised, so a `GET /events` tail can be grepped without joining
//! against anything else. This is the classic structured-events
//! complement to metrics (aggregates, no context) and traces (context,
//! but sampled by id).

use std::sync::{Mutex, OnceLock};

use crate::metrics::Counter;
use crate::trace::wall_now_us;

/// Default capacity of the global flight-recorder ring.
pub const DEFAULT_EVENT_RING_CAPACITY: usize = 1024;

/// One per-query wide event. All timings are microseconds; `sim_*` and
/// per-stage fields tick on the simulated device clock, `wall_elapsed_us`
/// on the host wall clock (see OBSERVABILITY.md on the two clocks).
#[derive(Clone, Debug)]
pub struct WideEvent {
    /// Monotonic sequence number assigned by the ring at record time.
    /// Strictly increasing across the process; gaps indicate drops.
    pub seq: u64,
    /// Trace id of the query (0 when the query was not traced).
    pub trace_id: u128,
    /// Wall-clock timestamp (microseconds since the Unix epoch) when the
    /// search started.
    pub start_us: f64,
    /// Host wall-clock time spent in the cluster search call.
    pub wall_elapsed_us: f64,
    /// Simulated device makespan: the max `total_us` across answering
    /// shards (what the paper's Eq. 3/4 model predicts).
    pub sim_wall_us: f64,
    /// Total descriptor comparisons across answering shards.
    pub comparisons: u64,
    /// Shards that answered.
    pub shards_ok: u32,
    /// Shards that failed (crash, fail-fast, join error).
    pub shards_failed: u32,
    /// Shards skipped by an open circuit breaker.
    pub shards_skipped: u32,
    /// Whether the answer was served degraded (some shards missing).
    pub degraded: bool,
    /// Terminal outcome: `"ok"`, `"degraded"`, or `"failed"`.
    pub outcome: &'static str,
    /// Largest coalesced group size among answering shards (1 = solo).
    pub coalesced: u32,
    /// Device-resident reference batches summed over answering shards.
    pub device_batches: u64,
    /// Host-spilled reference batches summed over answering shards.
    pub host_batches: u64,
    /// IVF cells probed summed over answering shards (0 = exhaustive).
    pub cells_probed: u64,
    /// Reference batches the IVF probe pruned, summed over answering shards.
    pub batches_pruned: u64,
    /// Transient-fault retries absorbed while fanning out this query.
    pub retries: u32,
    /// Summed simulated H2D transfer time across answering shards.
    pub h2d_us: f64,
    /// Summed simulated GEMM time across answering shards.
    pub gemm_us: f64,
    /// Summed simulated top-2 selection time across answering shards.
    pub top2_us: f64,
    /// Summed simulated D2H transfer time across answering shards.
    pub d2h_us: f64,
    /// Summed simulated postprocess (ratio-test vote) time.
    pub post_us: f64,
}

impl WideEvent {
    /// A zeroed event with the wall-clock start stamped now. Callers fill
    /// in the rest as the query progresses, then hand it to
    /// [`EventRing::record`], which assigns `seq`.
    pub fn begin(trace_id: u128) -> Self {
        WideEvent {
            seq: 0,
            trace_id,
            start_us: wall_now_us(),
            wall_elapsed_us: 0.0,
            sim_wall_us: 0.0,
            comparisons: 0,
            shards_ok: 0,
            shards_failed: 0,
            shards_skipped: 0,
            degraded: false,
            outcome: "ok",
            coalesced: 1,
            device_batches: 0,
            host_batches: 0,
            cells_probed: 0,
            batches_pruned: 0,
            retries: 0,
            h2d_us: 0.0,
            gemm_us: 0.0,
            top2_us: 0.0,
            d2h_us: 0.0,
            post_us: 0.0,
        }
    }
}

/// Bounded MPMC ring of wide events. Writers claim a slot with a single
/// atomic ticket increment and then `try_lock` the slot: a writer that
/// loses the (rare) race for a slot drops its own record rather than
/// blocking the search path, and overwriting a still-occupied slot
/// counts the displaced record as dropped — oldest-first eviction.
pub struct EventRing {
    slots: Vec<Mutex<Option<WideEvent>>>,
    head: std::sync::atomic::AtomicU64,
    /// Records lost to overwrite or slot contention.
    dropped: Counter,
    /// Records successfully written (dropped-on-overwrite still counted
    /// here first; `recorded - dropped` = live lower bound).
    recorded: Counter,
}

impl EventRing {
    /// A ring holding at most `capacity` events, with unregistered
    /// (free-standing) drop/record counters.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be positive");
        EventRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: std::sync::atomic::AtomicU64::new(0),
            dropped: Counter::default(),
            recorded: Counter::default(),
        }
    }

    /// Same, but drop/record counters registered as
    /// `texid_events_dropped_total` / `texid_events_recorded_total` in
    /// `reg`.
    pub fn with_registry(capacity: usize, reg: &crate::Registry) -> Self {
        let mut ring = EventRing::new(capacity);
        ring.dropped = reg.counter(
            "texid_events_dropped",
            "Wide events lost to flight-recorder ring overwrite or slot contention.",
            &[],
        );
        ring.recorded = reg.counter(
            "texid_events_recorded",
            "Wide events written to the flight recorder (including ones later dropped).",
            &[],
        );
        ring
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records lost so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Total records written so far.
    pub fn recorded(&self) -> u64 {
        self.recorded.get()
    }

    /// Write one event. Assigns and returns its sequence number. Never
    /// blocks: slot contention with a concurrent writer drops one record
    /// and advances the dropped counter exactly once.
    pub fn record(&self, mut ev: WideEvent) -> u64 {
        use std::sync::atomic::Ordering;
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        ev.seq = ticket;
        self.recorded.inc();
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut g) => {
                if g.replace(ev).is_some() {
                    // Displaced the oldest resident record.
                    self.dropped.inc();
                }
            }
            Err(_) => self.dropped.inc(),
        }
        ticket
    }

    /// Snapshot of every resident event, oldest first (sorted by `seq`).
    pub fn snapshot(&self) -> Vec<WideEvent> {
        let mut out: Vec<WideEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.try_lock().ok().and_then(|g| g.clone()))
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }
}

/// Process-wide flight recorder backing `GET /events`, with its counters
/// registered in [`crate::global()`].
pub fn global_events() -> &'static EventRing {
    static GLOBAL: OnceLock<EventRing> = OnceLock::new();
    GLOBAL.get_or_init(|| EventRing::with_registry(DEFAULT_EVENT_RING_CAPACITY, crate::global()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_drops_oldest_first_and_counts_each_loss_once() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            let mut ev = WideEvent::begin(0);
            ev.comparisons = i;
            ring.record(ev);
        }
        let snap = ring.snapshot();
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "only the newest capacity records survive");
        assert_eq!(ring.dropped(), 6, "one drop per displaced record, exactly");
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn concurrent_writers_never_tear_a_record() {
        use std::sync::Arc;
        const WRITERS: u64 = 8;
        const PER: u64 = 200;
        let ring = Arc::new(EventRing::new(64));
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..PER {
                        // Derive every field from one value so a torn
                        // (partially-overwritten) record is detectable.
                        let v = w * PER + i;
                        let mut ev = WideEvent::begin(v as u128 + 1);
                        ev.comparisons = v;
                        ev.sim_wall_us = v as f64;
                        ev.h2d_us = v as f64 * 2.0;
                        ring.record(ev);
                    }
                });
            }
        });
        let snap = ring.snapshot();
        for ev in &snap {
            let v = ev.comparisons;
            assert_eq!(ev.trace_id, v as u128 + 1, "trace_id consistent with comparisons");
            assert_eq!(ev.sim_wall_us, v as f64, "sim_wall_us consistent");
            assert_eq!(ev.h2d_us, v as f64 * 2.0, "h2d_us consistent");
        }
        assert_eq!(
            snap.len() as u64 + ring.dropped(),
            WRITERS * PER,
            "held + dropped accounts for every write"
        );
        assert_eq!(ring.recorded(), WRITERS * PER);
    }

    #[test]
    fn snapshot_is_sorted_and_seq_gaps_reveal_drops() {
        let ring = EventRing::new(3);
        for _ in 0..5 {
            ring.record(WideEvent::begin(0));
        }
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }
}
