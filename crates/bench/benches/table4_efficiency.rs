//! **Table 4** — GPU efficiency (Eq. 3) at batch 1024, m = n = 768, FP16.

use texid_bench::{heading, row, thousands};
use texid_core::metrics::{achieved_tflops, gpu_efficiency};
use texid_gpu::{DeviceSpec, GpuSim, Precision};
use texid_knn::{match_batch, ExecMode, FeatureBlock, MatchConfig};
use texid_linalg::Mat;

fn speed(spec: &DeviceSpec, tensor_core: bool) -> f64 {
    let mut sim = GpuSim::new(spec.clone());
    let st = sim.default_stream();
    let cfg = MatchConfig {
        precision: Precision::F16,
        tensor_core,
        exec: ExecMode::TimingOnly,
        ..MatchConfig::default()
    };
    let r = FeatureBlock::from_mat(Mat::zeros(128, 768 * 1024), Precision::F16, cfg.scale);
    let q = FeatureBlock::from_mat(Mat::zeros(128, 768), Precision::F16, cfg.scale);
    match_batch(&cfg, &r, 1024, 768, &q, &mut sim, st).images_per_second()
}

fn main() {
    let p100 = DeviceSpec::tesla_p100();
    let v100 = DeviceSpec::tesla_v100();

    struct Row {
        label: &'static str,
        spec: DeviceSpec,
        tc: bool,
        paper_speed: f64,
        paper_tflops: f64,
        paper_eff: f64,
    }
    let rows = [
        Row { label: "Tesla P100", spec: p100, tc: false, paper_speed: 45_539.0, paper_tflops: 6.69, paper_eff: 35.8 },
        Row { label: "V100 w/o TC", spec: v100.clone(), tc: false, paper_speed: 67_612.0, paper_tflops: 9.94, paper_eff: 35.5 },
        Row { label: "V100 w/ TC", spec: v100, tc: true, paper_speed: 86_519.0, paper_tflops: 12.72, paper_eff: 11.4 },
    ];

    heading("Table 4: GPU efficiency (Eq. 3), m=n=768, batch 1024, FP16 (ours [paper])");
    row(&[
        "GPU".to_string(),
        "speed img/s".to_string(),
        "achieved TF".to_string(),
        "peak TF".to_string(),
        "efficiency".to_string(),
    ]);
    for r in rows {
        let s = speed(&r.spec, r.tc);
        let tf = achieved_tflops(s, 768, 768, 128);
        let eff = gpu_efficiency(&r.spec, s, 768, 768, 128, Precision::F16, r.tc) * 100.0;
        let peak = r.spec.peak_tflops(Precision::F16, r.tc);
        row(&[
            r.label.to_string(),
            format!("{} [{}]", thousands(s), thousands(r.paper_speed)),
            format!("{tf:.2} [{:.2}]", r.paper_tflops),
            format!("{peak:.0}"),
            format!("{eff:.1}% [{:.1}%]", r.paper_eff),
        ]);
    }
    println!(
        "\nThe tensor-core row's low efficiency is the paper's point: the 112 TFLOPS peak is\n\
         unreachable at this matrix size; batching helps but cannot saturate it."
    );
}
