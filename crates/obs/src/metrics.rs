//! Scalar instruments: monotonic counters and last-value gauges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event counter.
///
/// Increments are single relaxed atomic adds — safe (and meaningful) from
/// any thread, costing a few nanoseconds. Cloning shares the underlying
/// cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh unregistered counter at zero (tests; production code gets
    /// handles from [`crate::Registry::counter`]).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Count one event.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events at once.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge holding the last `f64` written (bit-cast into an `AtomicU64`).
///
/// Used for point-in-time values that go up and down: breaker states,
/// live efficiency ratios, busy fractions.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh unregistered gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Store a new value (relaxed; last writer wins).
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43, "clones share the cell");
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.873);
        assert_eq!(g.get(), 0.873);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
