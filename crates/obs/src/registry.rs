//! Metric registration and the process-wide family map.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};

/// What kind of instrument a metric family holds. One family (one metric
/// name) has exactly one kind; re-registering under a different kind is a
/// programming error and panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count; rendered with a `_total` suffix.
    Counter,
    /// Last-written point-in-time value.
    Gauge,
    /// Fixed-bucket distribution; rendered as `_bucket`/`_sum`/`_count`.
    Histogram,
}

/// A single registered instrument plus its (sorted) label set.
#[derive(Clone)]
pub(crate) enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// All instruments sharing one metric name.
pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
    /// Keyed by the serialized, key-sorted label set so registration is
    /// idempotent per (name, labels) and exposition order is stable.
    pub(crate) series: BTreeMap<Vec<(String, String)>, Instrument>,
}

pub(crate) struct Inner {
    pub(crate) families: Mutex<BTreeMap<String, Family>>,
}

/// A cheaply-cloneable handle to a set of metric families.
///
/// Registration (`counter` / `gauge` / `histogram`) takes a mutex and may
/// allocate — do it once at construction time and cache the returned
/// handles; the handles themselves are lock-free on the hot path. Most
/// code uses the process-wide [`crate::global`] registry; tests that need
/// exact-count isolation construct a private one.
#[derive(Clone)]
pub struct Registry {
    pub(crate) inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(Inner {
                families: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Register (or look up) a counter. The exposition name gets a
    /// `_total` suffix appended if not already present, per Prometheus
    /// naming convention; pass the base name and the registry normalizes.
    ///
    /// Idempotent: the same `(name, labels)` always returns a handle to
    /// the same underlying cell, so double-registration cannot split an
    /// event stream across two series.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a gauge or histogram.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let name = if name.ends_with("_total") {
            name.to_string()
        } else {
            format!("{name}_total")
        };
        let inst = self.register(&name, help, MetricKind::Counter, labels, || {
            Instrument::Counter(Counter::new())
        });
        match inst {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked in register()"),
        }
    }

    /// Register (or look up) a gauge. Gauge names never get a `_total`
    /// suffix — that suffix is reserved for counters.
    ///
    /// # Panics
    /// Panics if `name` is already registered under a different kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let inst = self.register(name, help, MetricKind::Gauge, labels, || {
            Instrument::Gauge(Gauge::new())
        });
        match inst {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked in register()"),
        }
    }

    /// Register (or look up) a histogram over the default latency ladder
    /// ([`crate::DEFAULT_LATENCY_BUCKETS_US`]).
    ///
    /// # Panics
    /// Panics if `name` is already registered under a different kind.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with_bounds(name, help, labels, &crate::DEFAULT_LATENCY_BUCKETS_US)
    }

    /// Register (or look up) a histogram with explicit bucket bounds. The
    /// bounds are fixed by whichever registration wins the race; later
    /// calls with different bounds get the existing series.
    ///
    /// # Panics
    /// Panics if `name` is already registered under a different kind.
    pub fn histogram_with_bounds(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let inst = self.register(name, help, MetricKind::Histogram, labels, || {
            Instrument::Histogram(Histogram::with_bounds(bounds))
        });
        match inst {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked in register()"),
        }
    }

    /// The unified per-stage latency histogram
    /// (`texid_stage_duration_us{stage=..., clock=...}`). `clock` is
    /// `"wall"` for measured host time or `"sim"` for simulated device
    /// time from the performance model.
    pub fn stage_duration(&self, stage: &str, clock: &str) -> Histogram {
        self.histogram(
            crate::STAGE_DURATION,
            "Per-stage pipeline latency in microseconds; clock=wall is measured, clock=sim is modeled.",
            &[("stage", stage), ("clock", clock)],
        )
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        key.sort();
        let mut families = self.inner.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name:?} already registered as {:?}, cannot re-register as {kind:?}",
            family.kind
        );
        family.series.entry(key).or_insert_with(make).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_labelset() {
        let r = Registry::new();
        let a = r.counter("events", "Events.", &[("kind", "x")]);
        let b = r.counter("events", "Events.", &[("kind", "x")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same (name, labels) shares one cell");
        let other = r.counter("events", "Events.", &[("kind", "y")]);
        assert_eq!(other.get(), 0, "different labels get a fresh cell");
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        let a = r.counter("hits", "Hits.", &[("a", "1"), ("b", "2")]);
        let b = r.counter("hits", "Hits.", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn counter_total_suffix_is_normalized() {
        let r = Registry::new();
        let a = r.counter("requests", "Requests.", &[]);
        let b = r.counter("requests_total", "Requests.", &[]);
        a.inc();
        assert_eq!(b.get(), 1, "base and _total names resolve to one family");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.gauge("speed", "Speed.", &[]);
        let _ = r.histogram("speed", "Speed.", &[]);
    }

    #[test]
    fn stage_duration_families_unify() {
        let r = Registry::new();
        let wall = r.stage_duration("extract", "wall");
        let sim = r.stage_duration("gemm", "sim");
        wall.observe(5.0);
        sim.observe(7.0);
        assert_eq!(r.stage_duration("extract", "wall").count(), 1);
        assert_eq!(r.stage_duration("gemm", "sim").count(), 1);
    }
}
