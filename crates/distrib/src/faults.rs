//! Deterministic fault injection for the distributed cluster.
//!
//! Production clusters (the paper's 14-container deployment, §8) lose
//! shards, suffer stragglers, and see storage bit-rot; a reproduction that
//! only models the happy path cannot claim the headline throughput is
//! *servable*. This module provides a seeded [`FaultPlan`] that the
//! [`Cluster`](crate::cluster::Cluster) consults at well-defined operation
//! points and that injects:
//!
//! * **shard crashes** — the shard worker panics mid-search;
//! * **straggler slowdowns** — a shard's simulated `total_us` is scaled;
//! * **KV loss / corruption** — a feature-store read returns nothing, or
//!   deterministically mangled bytes;
//! * **transient I/O errors** — an operation fails and is worth retrying;
//! * **durability faults** (DESIGN.md §12) — a WAL append is lost before
//!   fsync or torn mid-write, a snapshot lands bit-flipped, or a replay
//!   stalls for accounted simulated time. The mechanisms live in
//!   `texid-store` ([`texid_store::WriteFault`] / [`texid_store::SnapshotFault`]);
//!   this plan only decides *when* they fire.
//!
//! # Determinism contract
//!
//! There is **no wall-clock entropy anywhere**: every decision is a pure
//! function of `(seed, decision index)` plus the scripted rule set, and the
//! cluster calls [`FaultPlan::decide`] only from sequential, deterministic
//! code paths (never concurrently). Re-running the same workload against
//! the same plan therefore reproduces the exact failure sequence — the
//! property the chaos suite (`tests/chaos.rs`) is built on.
//!
//! The default is no plan at all (`Option<FaultPlan> = None` inside the
//! cluster), so production paths pay a single branch.

use std::sync::atomic::{AtomicU64, Ordering};

/// One simulated pipeline stage, for stage-targeted faults. Used by
/// [`FaultKind::StageStall`] to slow a single stage of a shard's search
/// (e.g. only the GEMM), which is the knob the cost-model drift sentry's
/// acceptance test turns: a one-stage slowdown must move exactly one
/// `texid_model_drift_ratio{stage}` gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Host-to-device descriptor transfer.
    H2d,
    /// The matching GEMM.
    Gemm,
    /// Top-2 neighbor selection.
    Top2,
    /// Device-to-host result transfer.
    D2h,
    /// Ratio-test vote postprocess.
    Post,
}

/// What kind of fault fires at an operation point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The shard worker panics (as a real container OOM/segfault would).
    ShardCrash,
    /// The shard completes but its simulated time is scaled by `factor`.
    Straggler {
        /// Slowdown multiplier applied to the shard's simulated time.
        factor: f64,
    },
    /// The shard completes but one pipeline stage's simulated time is
    /// scaled by `factor` — a kernel-level regression (clock throttle,
    /// cache thrash) rather than a whole-node straggler.
    StageStall {
        /// Which stage slows down.
        stage: Stage,
        /// Slowdown multiplier applied to that stage's simulated time.
        factor: f64,
    },
    /// A feature-store read finds nothing (entry lost).
    KvLoss,
    /// A feature-store read returns deterministically corrupted bytes.
    KvCorrupt,
    /// A transient I/O error: the operation fails but a retry may succeed.
    Transient,
    /// A WAL append is lost before fsync — the writer believes it wrote,
    /// the media kept nothing.
    CrashBeforeFsync,
    /// A WAL append is sheared mid-write, leaving a dangling prefix for
    /// replay to find and drop.
    TornWrite,
    /// A snapshot lands with a flipped bit, so replay must reject it by
    /// checksum and fall back to the WAL.
    SnapshotCorrupt,
    /// A shard's replay stalls for `us` simulated microseconds (accounted,
    /// not slept) — the recovery-path analogue of a straggler.
    ReplayStall {
        /// Simulated stall, µs.
        us: f64,
    },
}

/// The operation classes the cluster exposes to fault injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// One shard's share of a scatter-gather search (flush + match).
    SearchShard,
    /// A feature-store read (search recovery, `get_texture`, `verify`).
    KvRead,
    /// A feature-store write (`add_texture`, `update_texture`).
    KvWrite,
    /// A durable WAL append riding a feature-store write.
    WalAppend,
    /// A periodic snapshot/compaction write.
    SnapshotWrite,
    /// One shard's replay leg inside `heal()`.
    Replay,
}

/// One operation point, described to [`FaultPlan::decide`].
#[derive(Clone, Copy, Debug)]
pub struct FaultOp<'a> {
    /// Operation class.
    pub class: OpClass,
    /// Shard index for shard-scoped operations.
    pub shard: Option<usize>,
    /// Store key for KV operations.
    pub key: Option<&'a str>,
}

impl<'a> FaultOp<'a> {
    /// A shard's search leg.
    pub fn search_shard(shard: usize) -> FaultOp<'a> {
        FaultOp { class: OpClass::SearchShard, shard: Some(shard), key: None }
    }

    /// A store read of `key`.
    pub fn kv_read(key: &'a str) -> FaultOp<'a> {
        FaultOp { class: OpClass::KvRead, shard: None, key: Some(key) }
    }

    /// A store write of `key`.
    pub fn kv_write(key: &'a str) -> FaultOp<'a> {
        FaultOp { class: OpClass::KvWrite, shard: None, key: Some(key) }
    }

    /// The durable WAL append carrying a write of `key`.
    pub fn wal_append(key: &'a str) -> FaultOp<'a> {
        FaultOp { class: OpClass::WalAppend, shard: None, key: Some(key) }
    }

    /// A snapshot/compaction write.
    pub fn snapshot_write() -> FaultOp<'a> {
        FaultOp { class: OpClass::SnapshotWrite, shard: None, key: None }
    }

    /// Shard `shard`'s replay leg inside `heal()`.
    pub fn replay(shard: usize) -> FaultOp<'a> {
        FaultOp { class: OpClass::Replay, shard: Some(shard), key: None }
    }
}

/// Per-class probabilities for seeded chaos mode (all default to 0).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultProbs {
    /// P(shard crash) per search leg.
    pub shard_crash: f64,
    /// P(straggler) per search leg.
    pub straggler: f64,
    /// P(transient error) per operation (any class).
    pub transient: f64,
    /// P(lost entry) per store read.
    pub kv_loss: f64,
    /// P(corrupted bytes) per store read.
    pub kv_corrupt: f64,
    /// P(append lost before fsync) per durable WAL append.
    pub crash_before_fsync: f64,
    /// P(append sheared mid-write) per durable WAL append.
    pub torn_write: f64,
    /// P(bit-flipped snapshot) per compaction.
    pub snapshot_corrupt: f64,
    /// P(stall) per shard replay leg.
    pub replay_stall: f64,
}

/// A scripted injection: fire `kind` on the nth..nth+count'th matching op.
#[derive(Debug)]
struct Rule {
    class: OpClass,
    shard: Option<usize>,
    kind: FaultKind,
    /// Matching operations let through before the rule starts firing.
    skip: u64,
    /// Injections remaining.
    budget: AtomicU64,
    /// Matching operations seen so far.
    seen: AtomicU64,
}

/// A deterministic, seeded fault schedule.
///
/// Scripted rules (exact "crash shard 2 on its first search leg" style) are
/// checked first; if none fires, the seeded probabilistic chaos mode draws
/// from a counter-indexed SplitMix64 stream.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    probs: FaultProbs,
    rules: Vec<Rule>,
    draws: AtomicU64,
    injected: AtomicU64,
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// An empty plan: injects nothing until rules or probabilities are added.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            probs: FaultProbs::default(),
            rules: Vec::new(),
            draws: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Seeded chaos mode: every operation rolls against `probs`.
    pub fn chaos(seed: u64, probs: FaultProbs) -> FaultPlan {
        FaultPlan { probs, ..FaultPlan::new(seed) }
    }

    fn rule(mut self, class: OpClass, shard: Option<usize>, kind: FaultKind, skip: u64, count: u64) -> Self {
        self.rules.push(Rule {
            class,
            shard,
            kind,
            skip,
            budget: AtomicU64::new(count),
            seen: AtomicU64::new(0),
        });
        self
    }

    /// Crash `shard`'s next search leg (once).
    pub fn crash_shard(self, shard: usize) -> Self {
        self.crash_shard_after(shard, 0)
    }

    /// Crash `shard`'s search leg after letting `skip` legs succeed.
    pub fn crash_shard_after(self, shard: usize, skip: u64) -> Self {
        self.rule(OpClass::SearchShard, Some(shard), FaultKind::ShardCrash, skip, 1)
    }

    /// Slow `shard` down by `factor` on its next `count` search legs.
    pub fn straggle_shard(self, shard: usize, factor: f64, count: u64) -> Self {
        self.rule(OpClass::SearchShard, Some(shard), FaultKind::Straggler { factor }, 0, count)
    }

    /// Slow one pipeline `stage` of `shard`'s next `count` search legs by
    /// `factor`, leaving the other stages untouched. Scripted-only (no
    /// chaos probability), so adding it never perturbs existing seeded
    /// draw sequences.
    pub fn stall_stage(self, shard: usize, stage: Stage, factor: f64, count: u64) -> Self {
        self.rule(OpClass::SearchShard, Some(shard), FaultKind::StageStall { stage, factor }, 0, count)
    }

    /// Fail `shard`'s next `count` search legs with transient errors.
    pub fn transient_search(self, shard: usize, count: u64) -> Self {
        self.rule(OpClass::SearchShard, Some(shard), FaultKind::Transient, 0, count)
    }

    /// Lose the next `count` feature-store reads.
    pub fn lose_kv_reads(self, count: u64) -> Self {
        self.rule(OpClass::KvRead, None, FaultKind::KvLoss, 0, count)
    }

    /// Corrupt the next `count` feature-store reads.
    pub fn corrupt_kv_reads(self, count: u64) -> Self {
        self.rule(OpClass::KvRead, None, FaultKind::KvCorrupt, 0, count)
    }

    /// Fail the next `count` feature-store reads transiently.
    pub fn transient_kv_reads(self, count: u64) -> Self {
        self.rule(OpClass::KvRead, None, FaultKind::Transient, 0, count)
    }

    /// Fail the next `count` feature-store writes transiently.
    pub fn transient_kv_writes(self, count: u64) -> Self {
        self.rule(OpClass::KvWrite, None, FaultKind::Transient, 0, count)
    }

    /// Lose the WAL append of the next write after letting `skip` appends
    /// land cleanly (crash-before-fsync).
    pub fn lose_wal_append_after(self, skip: u64) -> Self {
        self.rule(OpClass::WalAppend, None, FaultKind::CrashBeforeFsync, skip, 1)
    }

    /// Tear the WAL append of the next write after letting `skip` appends
    /// land cleanly (the classic torn final record).
    pub fn tear_wal_append_after(self, skip: u64) -> Self {
        self.rule(OpClass::WalAppend, None, FaultKind::TornWrite, skip, 1)
    }

    /// Bit-flip the next `count` snapshot writes.
    pub fn corrupt_snapshots(self, count: u64) -> Self {
        self.rule(OpClass::SnapshotWrite, None, FaultKind::SnapshotCorrupt, 0, count)
    }

    /// Stall `shard`'s next replay leg by `us` simulated microseconds.
    pub fn stall_replay(self, shard: usize, us: f64) -> Self {
        self.rule(OpClass::Replay, Some(shard), FaultKind::ReplayStall { us }, 0, 1)
    }

    /// Decide what (if anything) to inject at `op`.
    ///
    /// Called by the cluster from sequential code only — see the module
    /// docs' determinism contract.
    pub fn decide(&self, op: FaultOp<'_>) -> Option<FaultKind> {
        // Scripted rules first, in declaration order. Every matching rule's
        // `seen` counter advances on every op — `skip` indexes ops, not
        // ops-left-over-after-earlier-rules — so two rules on the same class
        // (e.g. tear append #2, lose append #4) each hit their exact target.
        let mut chosen = None;
        for rule in &self.rules {
            if rule.class != op.class {
                continue;
            }
            if let (Some(want), Some(got)) = (rule.shard, op.shard) {
                if want != got {
                    continue;
                }
            } else if rule.shard.is_some() {
                continue;
            }
            let seen = rule.seen.fetch_add(1, Ordering::Relaxed);
            if seen < rule.skip || chosen.is_some() {
                continue;
            }
            // Claim one unit of budget (saturating at zero).
            let claimed = rule
                .budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_ok();
            if claimed {
                self.injected.fetch_add(1, Ordering::Relaxed);
                chosen = Some(rule.kind);
            }
        }
        if chosen.is_some() {
            return chosen;
        }

        // Seeded chaos: one uniform draw, mass split over the class's kinds.
        let candidates: &[(f64, FaultKind)] = match op.class {
            OpClass::SearchShard => &[
                (self.probs.shard_crash, FaultKind::ShardCrash),
                (self.probs.straggler, FaultKind::Straggler { factor: 0.0 }),
                (self.probs.transient, FaultKind::Transient),
            ],
            OpClass::KvRead => &[
                (self.probs.kv_loss, FaultKind::KvLoss),
                (self.probs.kv_corrupt, FaultKind::KvCorrupt),
                (self.probs.transient, FaultKind::Transient),
            ],
            OpClass::KvWrite => &[(self.probs.transient, FaultKind::Transient)],
            OpClass::WalAppend => &[
                (self.probs.crash_before_fsync, FaultKind::CrashBeforeFsync),
                (self.probs.torn_write, FaultKind::TornWrite),
            ],
            OpClass::SnapshotWrite => &[(self.probs.snapshot_corrupt, FaultKind::SnapshotCorrupt)],
            OpClass::Replay => &[(self.probs.replay_stall, FaultKind::ReplayStall { us: 0.0 })],
        };
        if candidates.iter().all(|(p, _)| *p <= 0.0) {
            return None;
        }
        let draw = self.draws.fetch_add(1, Ordering::Relaxed);
        let bits = splitmix(self.seed ^ draw.wrapping_mul(0xd6e8_feb8_6659_fd93));
        let mut u = unit(bits);
        for (p, kind) in candidates {
            if u < *p {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Some(match kind {
                    // Straggler factor derived from a second mix: 2x..16x.
                    FaultKind::Straggler { .. } => {
                        FaultKind::Straggler { factor: 2.0 + 14.0 * unit(splitmix(bits)) }
                    }
                    // Replay stall drawn the same way: 1ms..50ms simulated.
                    FaultKind::ReplayStall { .. } => {
                        FaultKind::ReplayStall { us: 1_000.0 + 49_000.0 * unit(splitmix(bits)) }
                    }
                    other => *other,
                });
            }
            u -= p;
        }
        None
    }

    /// Deterministically mangle stored bytes (truncate + flip the header)
    /// so the wire decoder reliably reports corruption.
    pub fn corrupt_bytes(&self, bytes: &mut Vec<u8>) {
        bytes.truncate(bytes.len() / 2);
        if let Some(b) = bytes.first_mut() {
            *b ^= 0xa5;
        }
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// Deterministic exponential backoff schedule for bounded retries.
///
/// Delays are *simulated* microseconds (they are accounted, not slept):
/// `base_us * 2^attempt`, attempt 0-indexed.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    /// First-retry delay, µs.
    pub base_us: f64,
    /// Maximum retry attempts after the initial try.
    pub max_retries: u32,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff { base_us: 100.0, max_retries: 3 }
    }
}

impl Backoff {
    /// Simulated delay before retry `attempt` (0-indexed).
    pub fn delay_us(&self, attempt: u32) -> f64 {
        self.base_us * (1u64 << attempt.min(20)) as f64
    }

    /// Total simulated delay for `attempts` retries.
    pub fn total_us(&self, attempts: u32) -> f64 {
        (0..attempts).map(|a| self.delay_us(a)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_rule_fires_at_the_right_occurrence() {
        let plan = FaultPlan::new(1).crash_shard_after(2, 1);
        // First leg of shard 2 passes, second crashes, third passes.
        assert_eq!(plan.decide(FaultOp::search_shard(2)), None);
        assert_eq!(plan.decide(FaultOp::search_shard(0)), None);
        assert_eq!(plan.decide(FaultOp::search_shard(2)), Some(FaultKind::ShardCrash));
        assert_eq!(plan.decide(FaultOp::search_shard(2)), None);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn budgets_are_finite() {
        let plan = FaultPlan::new(1).transient_kv_reads(2);
        assert_eq!(plan.decide(FaultOp::kv_read("k")), Some(FaultKind::Transient));
        assert_eq!(plan.decide(FaultOp::kv_read("k")), Some(FaultKind::Transient));
        assert_eq!(plan.decide(FaultOp::kv_read("k")), None);
    }

    #[test]
    fn chaos_mode_is_seed_deterministic() {
        let probs = FaultProbs { shard_crash: 0.2, straggler: 0.2, transient: 0.2, ..Default::default() };
        let a = FaultPlan::chaos(99, probs);
        let b = FaultPlan::chaos(99, probs);
        let seq_a: Vec<_> = (0..64).map(|i| a.decide(FaultOp::search_shard(i % 4))).collect();
        let seq_b: Vec<_> = (0..64).map(|i| b.decide(FaultOp::search_shard(i % 4))).collect();
        assert_eq!(seq_a, seq_b);
        assert!(a.injected() > 0, "probabilities too low to test anything");

        let c = FaultPlan::chaos(100, probs);
        let seq_c: Vec<_> = (0..64).map(|i| c.decide(FaultOp::search_shard(i % 4))).collect();
        assert_ne!(seq_a, seq_c, "different seeds should differ");
    }

    #[test]
    fn chaos_respects_zero_probabilities() {
        let plan = FaultPlan::chaos(7, FaultProbs::default());
        for i in 0..128 {
            assert_eq!(plan.decide(FaultOp::search_shard(i)), None);
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn straggler_factors_are_bounded() {
        let probs = FaultProbs { straggler: 1.0, ..Default::default() };
        let plan = FaultPlan::chaos(3, probs);
        for i in 0..32 {
            match plan.decide(FaultOp::search_shard(i)) {
                Some(FaultKind::Straggler { factor }) => {
                    assert!((2.0..=16.0).contains(&factor), "{factor}");
                }
                other => panic!("expected straggler, got {other:?}"),
            }
        }
    }

    #[test]
    fn stage_stall_targets_one_shard_and_stage() {
        let plan = FaultPlan::new(1).stall_stage(1, Stage::Gemm, 2.0, 2);
        assert_eq!(plan.decide(FaultOp::search_shard(0)), None);
        assert_eq!(
            plan.decide(FaultOp::search_shard(1)),
            Some(FaultKind::StageStall { stage: Stage::Gemm, factor: 2.0 })
        );
        assert_eq!(
            plan.decide(FaultOp::search_shard(1)),
            Some(FaultKind::StageStall { stage: Stage::Gemm, factor: 2.0 })
        );
        assert_eq!(plan.decide(FaultOp::search_shard(1)), None, "budget exhausted");
    }

    #[test]
    fn corruption_is_detectable_and_deterministic() {
        let plan = FaultPlan::new(5);
        let original = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut a = original.clone();
        let mut b = original.clone();
        plan.corrupt_bytes(&mut a);
        plan.corrupt_bytes(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, original);
        assert!(a.len() < original.len());
    }

    #[test]
    fn durability_rules_target_the_exact_append() {
        let plan = FaultPlan::new(1).tear_wal_append_after(2).lose_wal_append_after(4);
        let kinds: Vec<_> = (0..6).map(|i| plan.decide(FaultOp::wal_append(&format!("k{i}")))).collect();
        assert_eq!(
            kinds,
            vec![
                None,
                None,
                Some(FaultKind::TornWrite),
                None,
                Some(FaultKind::CrashBeforeFsync),
                None
            ]
        );
    }

    #[test]
    fn snapshot_and_replay_rules_fire() {
        let plan = FaultPlan::new(1).corrupt_snapshots(1).stall_replay(3, 5_000.0);
        assert_eq!(plan.decide(FaultOp::snapshot_write()), Some(FaultKind::SnapshotCorrupt));
        assert_eq!(plan.decide(FaultOp::snapshot_write()), None);
        assert_eq!(plan.decide(FaultOp::replay(0)), None);
        assert_eq!(plan.decide(FaultOp::replay(3)), Some(FaultKind::ReplayStall { us: 5_000.0 }));
        assert_eq!(plan.decide(FaultOp::replay(3)), None);
    }

    #[test]
    fn chaos_replay_stalls_are_bounded() {
        let probs = FaultProbs { replay_stall: 1.0, ..Default::default() };
        let plan = FaultPlan::chaos(11, probs);
        for i in 0..16 {
            match plan.decide(FaultOp::replay(i)) {
                Some(FaultKind::ReplayStall { us }) => {
                    assert!((1_000.0..=50_000.0).contains(&us), "{us}");
                }
                other => panic!("expected replay stall, got {other:?}"),
            }
        }
    }

    #[test]
    fn backoff_is_exponential_and_bounded() {
        let b = Backoff { base_us: 100.0, max_retries: 3 };
        assert_eq!(b.delay_us(0), 100.0);
        assert_eq!(b.delay_us(1), 200.0);
        assert_eq!(b.delay_us(2), 400.0);
        assert_eq!(b.total_us(3), 700.0);
        assert_eq!(b.total_us(0), 0.0);
    }
}
