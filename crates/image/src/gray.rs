//! Grayscale floating-point image type.
//!
//! Pixels are `f32` in `[0, 1]` (clamping is the caller's concern until
//! export). Row-major storage: pixel `(x, y)` lives at `data[y * width + x]`.

/// A grayscale image with `f32` pixels.
#[derive(Clone, Debug, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Create a black (all-zero) image.
    pub fn new(width: usize, height: usize) -> Self {
        Self { width, height, data: vec![0.0; width * height] }
    }

    /// Create a constant-valued image.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        Self { width, height, data: vec![value; width * height] }
    }

    /// Build from a row-major pixel vector.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "pixel buffer size mismatch");
        Self { width, height, data }
    }

    /// Build from a function of `(x, y)`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Self { width, height, data }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel accessor (no bounds check in release builds).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Mutable pixel accessor.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Pixel with edge clamping for out-of-range coordinates.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let xc = x.clamp(0, self.width as isize - 1) as usize;
        let yc = y.clamp(0, self.height as isize - 1) as usize;
        self.data[yc * self.width + xc]
    }

    /// Bilinear sample at a continuous coordinate, edge-clamped.
    pub fn sample_bilinear(&self, x: f32, y: f32) -> f32 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let x0 = x0 as isize;
        let y0 = y0 as isize;
        let p00 = self.get_clamped(x0, y0);
        let p10 = self.get_clamped(x0 + 1, y0);
        let p01 = self.get_clamped(x0, y0 + 1);
        let p11 = self.get_clamped(x0 + 1, y0 + 1);
        p00 * (1.0 - fx) * (1.0 - fy)
            + p10 * fx * (1.0 - fy)
            + p01 * (1.0 - fx) * fy
            + p11 * fx * fy
    }

    /// Row-major pixel slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major pixel slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// A contiguous row.
    #[inline]
    pub fn row(&self, y: usize) -> &[f32] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Mean pixel value (0 for an empty image).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Pixel standard deviation.
    pub fn stddev(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mu = self.mean();
        let var = self.data.iter().map(|v| (v - mu).powi(2)).sum::<f32>() / self.data.len() as f32;
        var.sqrt()
    }

    /// Clamp all pixels into `[0, 1]` in place.
    pub fn clamp01(&mut self) {
        for v in &mut self.data {
            *v = v.clamp(0.0, 1.0);
        }
    }

    /// Extract a `w × h` crop with top-left corner `(x, y)`.
    ///
    /// # Panics
    /// Panics if the crop rectangle leaves the image.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> GrayImage {
        assert!(x + w <= self.width && y + h <= self.height, "crop out of bounds");
        GrayImage::from_fn(w, h, |cx, cy| self.get(x + cx, y + cy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut im = GrayImage::new(4, 3);
        assert_eq!(im.width(), 4);
        assert_eq!(im.height(), 3);
        im.set(2, 1, 0.5);
        assert_eq!(im.get(2, 1), 0.5);
        assert_eq!(im.get(0, 0), 0.0);
    }

    #[test]
    fn from_fn_layout() {
        let im = GrayImage::from_fn(3, 2, |x, y| (y * 3 + x) as f32);
        assert_eq!(im.as_slice(), &[0., 1., 2., 3., 4., 5.]);
        assert_eq!(im.row(1), &[3., 4., 5.]);
    }

    #[test]
    fn clamped_access_at_edges() {
        let im = GrayImage::from_fn(2, 2, |x, y| (x + 2 * y) as f32);
        assert_eq!(im.get_clamped(-5, -5), 0.0);
        assert_eq!(im.get_clamped(10, 10), 3.0);
        assert_eq!(im.get_clamped(-1, 1), 2.0);
    }

    #[test]
    fn bilinear_interpolates() {
        let im = GrayImage::from_vec(2, 1, vec![0.0, 1.0]);
        assert_eq!(im.sample_bilinear(0.0, 0.0), 0.0);
        assert_eq!(im.sample_bilinear(1.0, 0.0), 1.0);
        assert!((im.sample_bilinear(0.5, 0.0) - 0.5).abs() < 1e-6);
        assert!((im.sample_bilinear(0.25, 0.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn bilinear_exact_at_integer_coords() {
        let im = GrayImage::from_fn(4, 4, |x, y| (x * 7 + y * 3) as f32 * 0.01);
        for y in 0..4 {
            for x in 0..4 {
                assert!((im.sample_bilinear(x as f32, y as f32) - im.get(x, y)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn statistics() {
        let im = GrayImage::from_vec(2, 2, vec![0.0, 1.0, 0.0, 1.0]);
        assert!((im.mean() - 0.5).abs() < 1e-6);
        assert!((im.stddev() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn clamp01_saturates() {
        let mut im = GrayImage::from_vec(1, 3, vec![-0.5, 0.5, 1.5]);
        im.clamp01();
        assert_eq!(im.as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn crop_extracts_subimage() {
        let im = GrayImage::from_fn(4, 4, |x, y| (y * 4 + x) as f32);
        let c = im.crop(1, 2, 2, 2);
        assert_eq!(c.as_slice(), &[9., 10., 13., 14.]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn crop_rejects_overflow() {
        let im = GrayImage::new(4, 4);
        let _ = im.crop(3, 3, 2, 2);
    }
}
