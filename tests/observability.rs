//! Observability acceptance suite: the metrics catalog lint and the
//! exemplar → trace → event drill-down path, end to end.
//!
//! Two layers under test:
//!
//! 1. **Catalog lint** — every `texid_*` family a live server actually
//!    exposes on `/metrics` must have a row in OBSERVABILITY.md's metric
//!    catalog, and every family the catalog documents must really be
//!    exposed. Drift in either direction fails CI.
//! 2. **Exemplar drill-down** — a traced search must leave its trace id as
//!    the exemplar on the stage-latency buckets it landed in, so an
//!    operator staring at a slow bucket on `/metrics` can jump straight to
//!    `GET /trace/{id}` (the span tree) and the matching flight-recorder
//!    record on `GET /events`.
//!
//! Both tests share one server (the registry is process-global) and a
//! mutex so the exemplar test's search is the only traced search in this
//! process — the slowest-bucket exemplar is then deterministic.
//!
//! The harness deliberately also runs one stream-pipeline simulation:
//! `texid_pipeline_*` are the only lazily-registered families, and the
//! lint must see them live.

use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard, OnceLock};

use std::sync::Arc;
use texid_core::EngineConfig;
use texid_distrib::api;
use texid_distrib::b64;
use texid_distrib::cluster::{Cluster, ClusterConfig};
use texid_distrib::http::{http_call, http_call_with_headers, HttpServer};
use texid_distrib::json::{parse, Json};
use texid_distrib::wire;
use texid_gpu::pipeline::{simulate, ChunkSpec};
use texid_gpu::{DeviceSpec, Precision};
use texid_image::TextureGenerator;
use texid_sift::{extract, FeatureMatrix, SiftConfig};

struct Harness {
    addr: SocketAddr,
    _server: HttpServer,
}

/// One server for the whole binary; no traced searches happen here.
fn harness() -> (&'static Harness, MutexGuard<'static, ()>) {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let h = HARNESS.get_or_init(|| {
        // Touch the lazily-registered pipeline families so the lint sees
        // the full surface a long-lived server would expose.
        let spec = DeviceSpec::tesla_p100();
        let chunk = ChunkSpec {
            batch: 64,
            m: 768,
            n: 768,
            d: 128,
            precision: Precision::F16,
            pinned: true,
        };
        let stats = simulate(&spec, &chunk, 4, 2, spec.calib.stream_serial_fraction);
        assert!(stats.makespan_us > 0.0);

        let cluster = Arc::new(Cluster::new(ClusterConfig {
            containers: 2,
            engine: EngineConfig {
                m_ref: 128,
                n_query: 256,
                batch_size: 2,
                streams: 1,
                ..EngineConfig::default()
            },
            ..ClusterConfig::default()
        }));
        let server = api::serve(cluster, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        for id in 0..4u64 {
            let payload = b64::encode(&wire::encode_features(&features(id, 128)));
            let body = format!(r#"{{"id": {id}, "features": "{payload}"}}"#);
            assert_eq!(http_call(addr, "POST", "/textures", body.as_bytes()).unwrap().status, 201);
        }
        Harness { addr, _server: server }
    });
    (h, guard)
}

fn features(seed: u64, n: usize) -> FeatureMatrix {
    let im = TextureGenerator::with_size(128).generate(seed);
    extract(&im, &SiftConfig { max_features: n, ..SiftConfig::default() })
}

/// Every family the server exposes is documented, and every family the
/// catalog documents is exposed. `# TYPE <name> <kind>` lines are the
/// ground truth for "exposed"; backticked `texid_*` names in the first
/// cell of catalog table rows are the ground truth for "documented".
#[test]
fn metrics_catalog_matches_live_registry_both_ways() {
    let (h, _guard) = harness();
    let resp = http_call(h.addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(resp.status, 200);
    let exposed: BTreeSet<String> = resp
        .text()
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .filter(|name| name.starts_with("texid_"))
        .map(str::to_string)
        .collect();
    assert!(exposed.len() > 20, "harness should expose a rich surface: {exposed:?}");

    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../OBSERVABILITY.md");
    let doc = std::fs::read_to_string(doc_path).expect("OBSERVABILITY.md readable");
    let mut documented: BTreeSet<String> = BTreeSet::new();
    for line in doc.lines() {
        // First cell of a table row: "| `texid_foo` | ...".
        let Some(rest) = line.strip_prefix("| `") else { continue };
        let Some((name, _)) = rest.split_once('`') else { continue };
        if name.starts_with("texid_")
            && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            documented.insert(name.to_string());
        }
    }

    let undocumented: Vec<&String> = exposed.difference(&documented).collect();
    let phantom: Vec<&String> = documented.difference(&exposed).collect();
    assert!(
        undocumented.is_empty() && phantom.is_empty(),
        "metric catalog drift.\n  exposed but missing from OBSERVABILITY.md: {undocumented:?}\n  \
         documented but never exposed: {phantom:?}"
    );
}

/// The full p99-triage path from the runbook: traced search → scrape →
/// slowest stage bucket carries the trace id as its exemplar → the id
/// retrieves the span tree → the flight recorder holds the wide event.
#[test]
fn slow_bucket_exemplar_links_scrape_to_trace_and_event() {
    let (h, _guard) = harness();
    let tid = "00000000000000000000000000facade";
    let payload = b64::encode(&wire::encode_features(&features(1, 256)));
    let body = format!(r#"{{"features": "{payload}", "top": 2}}"#);
    let resp = http_call_with_headers(
        h.addr,
        "POST",
        "/search",
        &[("X-Texid-Trace-Id", tid)],
        body.as_bytes(),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    // Scrape and find the largest exemplar on the stage-latency buckets —
    // the slowest thing any search did. This binary runs exactly one
    // traced search, so it must be ours, on the stage="total" track.
    let metrics = http_call(h.addr, "GET", "/metrics", b"").unwrap().text();
    let mut slowest: Option<(f64, String, String)> = None;
    for line in metrics.lines() {
        if !line.starts_with("texid_stage_duration_us_bucket{") {
            continue;
        }
        let Some((_, annotation)) = line.split_once(" # {trace_id=\"") else { continue };
        let Some((exemplar_tid, rest)) = annotation.split_once('"') else { continue };
        let value: f64 = rest
            .trim_start_matches('}')
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("bad exemplar value in {line}: {e}"));
        if slowest.as_ref().is_none_or(|(v, ..)| value > *v) {
            slowest = Some((value, exemplar_tid.to_string(), line.to_string()));
        }
    }
    let (value, exemplar_tid, line) = slowest.expect("stage buckets carry exemplars");
    assert!(value > 0.0, "{line}");
    assert_eq!(exemplar_tid, tid, "slowest-bucket exemplar is the traced search: {line}");
    assert!(line.contains(r#"stage="total""#), "slowest stage is the end-to-end total: {line}");

    // The exemplar's id retrieves the span tree for that very search.
    let resp = http_call(h.addr, "GET", &format!("/trace/{exemplar_tid}"), b"").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = parse(&resp.text()).unwrap();
    assert_eq!(v.get("trace_id").and_then(Json::as_str), Some(tid));
    let roots = v.get("spans").and_then(Json::as_arr).unwrap();
    let root = roots
        .iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some("POST /search"))
        .expect("request root span");
    let kids = root.get("children").and_then(Json::as_arr).unwrap();
    let cluster_span = kids
        .iter()
        .find(|c| c.get("name").and_then(Json::as_str) == Some("cluster.search"))
        .expect("cluster.search child span");
    let legs = cluster_span.get("children").and_then(Json::as_arr).unwrap();
    assert_eq!(legs.len(), 2, "one leg per shard");

    // And the flight recorder holds the same search as a wide event.
    let events = http_call(h.addr, "GET", "/events", b"").unwrap().text();
    let record = events
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| parse(l).unwrap())
        .find(|v| v.get("trace_id").and_then(Json::as_str) == Some(tid))
        .expect("traced search filed a wide event");
    assert_eq!(record.get("outcome").and_then(Json::as_str), Some("ok"));
    assert_eq!(record.get("shards_ok").and_then(Json::as_u64), Some(2));
    assert!(record.get("sim_wall_us").and_then(Json::as_f64).unwrap() > 0.0);
}
