//! # texid-gpu
//!
//! A **GPU simulator substrate** standing in for CUDA + cuBLAS on Tesla
//! P100/V100 hardware, which this reproduction does not have.
//!
//! Separation of concerns: numerical kernels execute *functionally* on the
//! host (see `texid-linalg` / `texid-knn`); this crate supplies everything
//! the paper's optimizations interact with on the hardware side —
//!
//! * **Device specs** ([`DeviceSpec`]): peak FLOPS per precision, tensor
//!   cores, memory capacity/bandwidth, PCIe bandwidth (pinned vs pageable).
//! * **Memory accounting** ([`memory`]): allocations against the 16 GB
//!   device budget, out-of-memory behaviour, context overhead.
//! * **Engine timelines** ([`sim`]): H2D copy, D2H copy and compute engines
//!   with CUDA-stream ordering semantics; ops on different streams overlap
//!   when their engines are free — the mechanism behind the paper's §6.2.
//! * **Cost model** ([`cost`]): per-kernel analytic durations (roofline +
//!   occupancy saturation + launch/DMA latency) with constants calibrated
//!   against the paper's measured tables; see `cost.rs` for the anchor map.
//! * **Multi-stream throughput model** ([`streams`]): the calibrated
//!   serialization model reproducing Table 6's schedule efficiencies.
//!
//! All simulated times are in microseconds (`f64`).

pub mod cost;
pub mod memory;
pub mod pipeline;
pub mod sim;
pub mod spec;
pub mod streams;

pub use cost::Kernel;
pub use memory::{BufferId, MemError};
pub use sim::{GpuSim, OpKind, OpRecord, StreamId};
pub use spec::{DeviceSpec, Precision};
