//! **Ablation (§5.3 extension)** — query-side batching.
//!
//! The paper batches the *reference* matrices and notes that the query
//! matrix "can also be batched for higher performance. However, the search
//! latency also increases with worse achievable QoS", deferring the study.
//! This ablation runs it: sweep the number of queries matched per GEMM and
//! report throughput against per-query latency — the trade-off curve the
//! paper alludes to.

use texid_bench::{heading, row, thousands};
use texid_gpu::{DeviceSpec, GpuSim, Precision};
use texid_knn::{match_batch, ExecMode, FeatureBlock, MatchConfig};
use texid_linalg::Mat;

/// Throughput/latency of matching `qbatch` queries against one reference
/// batch of 256 (m = 384): the query matrices concatenate into a single
/// operand of n·qbatch columns.
fn run(qbatch: usize) -> (f64, f64) {
    let mut sim = GpuSim::new(DeviceSpec::tesla_p100());
    let st = sim.default_stream();
    let cfg = MatchConfig {
        precision: Precision::F16,
        exec: ExecMode::TimingOnly,
        ..MatchConfig::default()
    };
    let batch = 256;
    let m = 384;
    let n = 768;
    let r = FeatureBlock::from_mat(Mat::zeros(128, m * batch), Precision::F16, cfg.scale);
    let q = FeatureBlock::from_mat(Mat::zeros(128, n * qbatch), Precision::F16, cfg.scale);
    let out = match_batch(&cfg, &r, batch, m, &q, &mut sim, st);
    // Comparisons performed: batch references × qbatch queries.
    let total_us = out.steps.total_us();
    let comparisons_per_s = (batch * qbatch) as f64 / total_us * 1e6;
    // A query's result is only complete when the whole fused launch ends.
    let latency_ms = total_us / 1e3;
    (comparisons_per_s, latency_ms)
}

fn main() {
    heading("Ablation: query-side batching (m=384, n=768, ref batch 256, FP16, P100)");
    row(&[
        "query batch".to_string(),
        "comparisons/s".to_string(),
        "latency ms".to_string(),
        "speedup".to_string(),
        "latency blowup".to_string(),
    ]);
    let (base_speed, base_lat) = run(1);
    for qb in [1usize, 2, 4, 8, 16, 32] {
        let (speed, lat) = run(qb);
        row(&[
            qb.to_string(),
            thousands(speed),
            format!("{lat:.2}"),
            format!("{:.2}x", speed / base_speed),
            format!("{:.1}x", lat / base_lat),
        ]);
    }
    println!(
        "\nThe QoS trade-off the paper defers: throughput keeps rising with query batching,\n\
         but per-query latency grows almost linearly — unacceptable for the interactive\n\
         traceability lookups the system serves, which is why the paper batches only the\n\
         reference side."
    );
}
