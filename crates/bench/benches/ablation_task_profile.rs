//! **§3.3 reproduction** — where the time goes in each task.
//!
//! The paper: "By considering the verification task, the feature extraction
//! step dominates the compute demands ... However, [for] the identification
//! task of searching in a large reference texture image dataset, the
//! 2-nearest neighbors matching becomes the most complicated step ... since
//! the features of the reference texture images can be calculated offline."
//!
//! This bench quantifies that split. Extraction is *measured* (real CPU
//! wall time of our SIFT on this machine); matching is the simulated P100
//! time — the two are labelled, and it is their *scaling* with the
//! reference count (×1 for verification, ×M for search) that makes the
//! conclusion hardware-independent.

use std::time::Instant;
use texid_bench::{heading, row, thousands};
use texid_gpu::{DeviceSpec, GpuSim, Precision};
use texid_image::TextureGenerator;
use texid_knn::{match_batch, ExecMode, FeatureBlock, MatchConfig};
use texid_linalg::Mat;
use texid_sift::{extract, SiftConfig};

fn main() {
    // Measure extraction (median of 5 runs, 256² image, n = 768 features).
    let im = TextureGenerator::with_size(256).generate(3);
    let cfg = SiftConfig { max_features: 768, ..SiftConfig::default() };
    let mut times: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            let f = extract(&im, &cfg);
            assert!(f.len() > 500);
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let extract_us = times[times.len() / 2];

    // Simulated per-image matching cost at the production configuration.
    let mut sim = GpuSim::new(DeviceSpec::tesla_p100());
    let st = sim.default_stream();
    let mcfg = MatchConfig {
        precision: Precision::F16,
        exec: ExecMode::TimingOnly,
        ..MatchConfig::default()
    };
    let r = FeatureBlock::from_mat(Mat::zeros(128, 384 * 256), Precision::F16, mcfg.scale);
    let q = FeatureBlock::from_mat(Mat::zeros(128, 768), Precision::F16, mcfg.scale);
    let match_us = match_batch(&mcfg, &r, 256, 384, &q, &mut sim, st).per_image_us();

    heading("Task profile (Sec. 3.3): extraction vs matching, per query");
    row(&[
        "task".to_string(),
        "extract (CPU)".to_string(),
        "matching".to_string(),
        "match share".to_string(),
    ]);
    for (label, m) in [
        ("verification (M=1)", 1u64),
        ("search M=1k", 1_000),
        ("search M=100k", 100_000),
        ("search M=1M", 1_000_000),
    ] {
        let match_total = match_us * m as f64;
        row(&[
            label.to_string(),
            format!("{:.0} µs", extract_us),
            format!("{} µs", thousands(match_total)),
            format!("{:.1}%", match_total / (match_total + extract_us) * 100.0),
        ]);
    }
    println!(
        "\nVerification is extraction-bound; million-scale search is matching-bound by\n\
         ~{}x — which is why the paper optimizes the matching side (and why reference\n\
         features are extracted offline).",
        thousands(match_us * 1e6 / extract_us)
    );
}
