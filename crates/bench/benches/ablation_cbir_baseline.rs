//! **Ablation (§2/§3)** — why CBIR-style pooled search fails for texture
//! identification.
//!
//! The paper's premise: CBIR pools all reference features into one database
//! and runs a single global nearest-neighbour per query feature, which "can
//! be very efficient but suffer[s] low accuracy ... lacking the
//! discriminate capability especially in fine-grained identification". This
//! ablation measures it: on the same fine-grained sibling dataset, compare
//!
//! 1. pooled global 2-NN + global ratio-test voting (CBIR),
//! 2. pooled 1-NN voting without a ratio test (BoW-style),
//! 3. the paper's per-image 2-NN matching (our engine).

use texid_bench::{heading, row};
use texid_core::eval::{build_dataset, top1_accuracy, EvalConfig, Severity, MIN_MATCHES};
use texid_gpu::Precision;
use texid_knn::pooled::PooledIndex;
use texid_knn::{ExecMode, MatchConfig};

fn main() {
    let cfg = EvalConfig {
        n_refs: 24,
        n_queries: 32,
        image_size: 384,
        m_ref: 384,
        n_query: 768,
        seed: 0xcb1e,
        severity: Severity::Severe,
        fine_grained: true,
        rootsift: true,
    };
    eprintln!(
        "building fine-grained dataset ({} sibling refs, {} severe queries) ...",
        cfg.n_refs, cfg.n_queries
    );
    let ds = build_dataset(&cfg);

    // --- pooled (CBIR) baselines ---
    let handles: Vec<(u64, &texid_linalg::Mat)> =
        ds.refs.iter().enumerate().map(|(i, f)| (i as u64, &f.mat)).collect();
    let index = PooledIndex::build(&handles);
    eprintln!("pooled index: {} features from {} images", index.len(), index.image_count());

    let eval_pooled = |use_ratio: bool| -> f64 {
        let correct = ds
            .queries
            .iter()
            .filter(|(q, true_id)| {
                let ranked = if use_ratio {
                    index.search(&q.mat, 0.75)
                } else {
                    index.search_votes_only(&q.mat)
                };
                ranked
                    .first()
                    .is_some_and(|(id, votes)| id == true_id && *votes >= MIN_MATCHES)
            })
            .count();
        correct as f64 / ds.queries.len() as f64
    };
    let acc_cbir_ratio = eval_pooled(true);
    let acc_cbir_votes = eval_pooled(false);

    // --- the paper's per-image matching ---
    let acc_per_image = top1_accuracy(
        &ds,
        &MatchConfig { precision: Precision::F32, exec: ExecMode::Full, ..MatchConfig::default() },
    );

    heading("Ablation: pooled CBIR search vs per-image matching (fine-grained siblings)");
    row(&["approach".to_string(), "top-1 accuracy".to_string()]);
    row(&["pooled 2-NN + global ratio test".to_string(), format!("{:.1}%", acc_cbir_ratio * 100.0)]);
    row(&["pooled 1-NN voting (BoW-style)".to_string(), format!("{:.1}%", acc_cbir_votes * 100.0)]);
    row(&["per-image 2-NN (paper / ours)".to_string(), format!("{:.1}%", acc_per_image * 100.0)]);

    println!(
        "\nThe paper's premise quantified: pooling erases per-image discrimination on a\n\
         fine-grained reference set (the global second-nearest neighbour sits in a sibling\n\
         image, so the ratio test kills genuine matches), while one-by-one matching — the\n\
         computation pattern the whole paper accelerates — survives.\n\n\
         Caveat: thresholdless 1-NN voting looks strong HERE because {} references\n\
         concentrate the ~{} votes per query; at the paper's 300k scale those votes\n\
         spread over 300k candidates and the approach collapses too (each image would\n\
         receive ~0.002 votes of noise floor yet genuine images still only win by the\n\
         margin the ratio test was supposed to protect).",
        index.image_count(),
        ds.queries.first().map_or(0, |(q, _)| q.len()),
    );
    assert!(
        acc_per_image > acc_cbir_ratio,
        "per-image matching must beat pooled CBIR on fine-grained data"
    );
}
