//! **§8 / Fig. 6** — the distributed texture search system: 14 Tesla P100
//! containers, 76 GB hybrid cache each (12 GB usable device + 64 GB host),
//! m = 384 FP16 references at batch 256 with 8 streams.
//!
//! Paper claims: 10.8 M cached feature matrices, 872,984 img/s aggregate
//! search speed, million-scale search in ~1.15 s.

use texid_bench::{heading, row, thousands};
use texid_cache::CacheConfig;
use texid_core::capacity::{bytes_per_reference, hybrid_capacity};
use texid_core::{Engine, EngineConfig};
use texid_gpu::{DeviceSpec, Precision};
use texid_knn::{ExecMode, MatchConfig};
use texid_linalg::Mat;
use texid_sift::FeatureMatrix;

const CONTAINERS: usize = 14;

fn container_engine() -> Engine {
    Engine::new(EngineConfig {
        device: DeviceSpec::tesla_p100(),
        matching: MatchConfig {
            precision: Precision::F16,
            exec: ExecMode::TimingOnly,
            ..MatchConfig::default()
        },
        m_ref: 384,
        n_query: 768,
        batch_size: 256,
        streams: 8,
        cache: CacheConfig {
            host_capacity_bytes: 64 << 30,
            device_reserve_bytes: 4 << 30,
            pinned: true,
        },
        rebalance_every: 0,
    })
}

fn main() {
    let spec = DeviceSpec::tesla_p100();
    let per_ref = bytes_per_reference(384, 128, Precision::F16, false);
    let per_container = hybrid_capacity(&spec, 4 << 30, 64 << 30, per_ref);
    let cluster_capacity = per_container * CONTAINERS as u64;

    heading("Distributed system (Sec. 8): 14 x Tesla P100, 76 GB hybrid cache per container");
    row(&["metric".to_string(), "ours".to_string(), "paper".to_string()]);
    row(&[
        "capacity/container".to_string(),
        thousands(per_container as f64),
        "~771,000".to_string(),
    ]);
    row(&[
        "cluster capacity".to_string(),
        thousands(cluster_capacity as f64),
        "10,800,000".to_string(),
    ]);

    // Fill one container to capacity (phantom references) and search.
    eprintln!("indexing {} phantom references into one container ...", thousands(per_container as f64));
    let mut engine = container_engine();
    let mut indexed = 0u64;
    for id in 0..per_container {
        if engine.add_reference_shape(id).is_err() {
            break;
        }
        indexed += 1;
    }
    let _ = engine.flush(); // a final partial batch may not fit; fine
    eprintln!("indexed {} references", thousands(indexed as f64));

    let q = FeatureMatrix::from_mat(Mat::zeros(128, 768), true);
    let report = engine.search(&q).report;
    let per_card = report.images_per_second();
    let aggregate = per_card * CONTAINERS as f64;

    row(&[
        "speed/container".to_string(),
        thousands(per_card),
        "62,356".to_string(),
    ]);
    row(&[
        "aggregate speed".to_string(),
        thousands(aggregate),
        "872,984".to_string(),
    ]);
    let million_search_s = 1_000_000.0 / aggregate;
    row(&[
        "1M-search latency".to_string(),
        format!("{million_search_s:.2} s"),
        "1.15 s".to_string(),
    ]);
    row(&[
        "full-capacity search".to_string(),
        format!("{:.2} s", cluster_capacity as f64 / aggregate),
        "~12.4 s".to_string(),
    ]);

    println!(
        "\nPer-container breakdown (simulated): {} device-resident batches, {} host-resident;\n\
         H2D streaming {:.1}% of serial time, overlapped by 8 CUDA streams.",
        report.device_batches,
        report.host_batches,
        report.h2d_us / report.serial_total_us * 100.0
    );
}
