//! Proof that the fused GEMM + top-2 path never materializes the `m × n`
//! similarity matrix: a counting global allocator measures the peak live
//! heap during the call and asserts it stays far below `m·n·4` bytes,
//! while the materialize-then-scan pipeline provably crosses that line.
//!
//! This is its own integration-test binary because a `#[global_allocator]`
//! is process-wide; keeping it out of the main test binaries avoids
//! perturbing their (parallel) allocation patterns.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use texid_linalg::gemm::gemm_at_b;
use texid_linalg::kernel::gemm_top2;
use texid_linalg::mat::Mat;
use texid_linalg::top2::top2_min_per_column;

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak heap growth (bytes above the starting live size) while running `f`.
fn peak_during<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (out, peak.saturating_sub(base))
}

#[test]
fn fused_top2_never_allocates_the_distance_matrix() {
    // Deliberately shallow (d = 16) so the packed operands are tiny next to
    // the m × n product: matrix = 1536·1024·4 = 6 MiB, operands ≈ 160 KiB.
    let (m, n, d) = (1536usize, 1024usize, 16usize);
    let a = Mat::from_fn(d, m, |r, c| ((r * 31 + c * 7) % 113) as f32 * 1e-2);
    let b = Mat::from_fn(d, n, |r, c| ((r * 17 + c * 3) % 127) as f32 * 1e-2);
    let matrix_bytes = m * n * 4;

    let (unfused, peak_unfused) =
        peak_during(|| top2_min_per_column(&gemm_at_b(-2.0, &a, &b)));
    assert!(
        peak_unfused >= matrix_bytes,
        "materialized pipeline must allocate the full matrix: peak {peak_unfused} < {matrix_bytes}"
    );

    let (fused, peak_fused) = peak_during(|| gemm_top2(-2.0, &a, &b));
    assert!(
        peak_fused < matrix_bytes / 4,
        "fused path must stay far below the m×n matrix: peak {peak_fused} vs {matrix_bytes}"
    );

    // And the cheapness must not cost correctness.
    assert_eq!(fused, unfused);
}
