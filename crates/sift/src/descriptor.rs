//! The 128-d SIFT descriptor (4×4 spatial cells × 8 orientation bins).
//!
//! Computed on the keypoint's own Gaussian level, rotated into its dominant
//! orientation, with trilinear soft-binning and Lowe's 0.2 clamp +
//! renormalization. Matches the construction OpenCV's SIFT uses, which is
//! what the paper extracted its 768 features per image with.

use crate::keypoint::Keypoint;
use crate::pyramid::Pyramid;
use rayon::prelude::*;
use texid_image::filter::gradient_at;
use texid_image::GrayImage;

/// Descriptor dimensionality: 4 × 4 × 8.
pub const DESCRIPTOR_DIM: usize = 128;

const D: usize = 4; // spatial cells per side
const NBINS: usize = 8; // orientation bins per cell
const SCL_FCTR: f32 = 3.0; // cell width in units of keypoint sigma
const MAG_CLAMP: f32 = 0.2; // Lowe's illumination clamp

/// Compute the raw (un-rooted) SIFT descriptor for `kp` on Gaussian level
/// `img`. Returns `None` when the sampling window would leave the image —
/// the paper's edge-feature removal.
pub fn compute_descriptor(img: &GrayImage, kp: &Keypoint, oct_sigma: f32) -> Option<[f32; DESCRIPTOR_DIM]> {
    let hist_width = SCL_FCTR * oct_sigma;
    let radius = (hist_width * core::f32::consts::SQRT_2 * (D as f32 + 1.0) * 0.5).round() as isize;
    let cx = kp.oct_x;
    let cy = kp.oct_y;
    let xi = cx.round() as isize;
    let yi = cy.round() as isize;

    // Edge-feature removal: the full rotated window must fit inside the
    // image (1-px margin for the central-difference gradients).
    if xi - radius < 1
        || yi - radius < 1
        || xi + radius >= img.width() as isize - 1
        || yi + radius >= img.height() as isize - 1
    {
        return None;
    }

    let (sin_a, cos_a) = kp.orientation.sin_cos();
    // Gaussian weighting over the whole window, σ = half the window width.
    let exp_scale = -2.0 / (D as f32 * D as f32 * hist_width * hist_width);

    // Accumulate into a padded histogram so trilinear scatter needs no
    // bounds checks; orientation wraps, spatial pads are dropped.
    let mut hist = [[[0.0f32; NBINS]; D + 2]; D + 2];

    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let px = xi + dx;
            let py = yi + dy;
            // Rotate the offset into the keypoint frame and express it in
            // histogram cells (centre of the grid at (D/2 − 0.5)).
            let fx = px as f32 - cx;
            let fy = py as f32 - cy;
            let x_rot = (cos_a * fx + sin_a * fy) / hist_width;
            let y_rot = (-sin_a * fx + cos_a * fy) / hist_width;
            let r_bin = y_rot + D as f32 / 2.0 - 0.5;
            let c_bin = x_rot + D as f32 / 2.0 - 0.5;
            if !(-1.0..D as f32).contains(&r_bin) || !(-1.0..D as f32).contains(&c_bin) {
                continue;
            }

            let (gx, gy) = gradient_at(img, px as usize, py as usize);
            let mag = (gx * gx + gy * gy).sqrt();
            if mag < 1e-12 {
                continue;
            }
            let w = ((x_rot * x_rot + y_rot * y_rot) * exp_scale).exp();
            let angle = gy.atan2(gx) - kp.orientation;
            let two_pi = 2.0 * core::f32::consts::PI;
            let mut o_bin = angle / two_pi * NBINS as f32;
            while o_bin < 0.0 {
                o_bin += NBINS as f32;
            }
            while o_bin >= NBINS as f32 {
                o_bin -= NBINS as f32;
            }

            // Trilinear soft-binning.
            let r0 = r_bin.floor();
            let c0 = c_bin.floor();
            let o0 = o_bin.floor();
            let fr = r_bin - r0;
            let fc = c_bin - c0;
            let fo = o_bin - o0;
            let r0 = r0 as isize;
            let c0 = c0 as isize;
            let o0 = o0 as usize;
            let v = w * mag;
            for (ri, rw) in [(r0, 1.0 - fr), (r0 + 1, fr)] {
                let row = (ri + 1) as usize; // pad offset
                if row > D + 1 {
                    continue;
                }
                for (ci, cw) in [(c0, 1.0 - fc), (c0 + 1, fc)] {
                    let col = (ci + 1) as usize;
                    if col > D + 1 {
                        continue;
                    }
                    for (oi, ow) in [(o0, 1.0 - fo), (o0 + 1, fo)] {
                        let ob = oi % NBINS;
                        hist[row][col][ob] += v * rw * cw * ow;
                    }
                }
            }
        }
    }

    // Collapse the padded grid into the 128-d vector (inner 4×4 cells only).
    let mut desc = [0.0f32; DESCRIPTOR_DIM];
    let mut k = 0;
    for row in &hist[1..=D] {
        for cell in &row[1..=D] {
            for &v in cell {
                desc[k] = v;
                k += 1;
            }
        }
    }

    // Normalize, clamp (illumination robustness), renormalize.
    normalize_l2(&mut desc);
    for v in &mut desc {
        *v = v.min(MAG_CLAMP);
    }
    normalize_l2(&mut desc);
    Some(desc)
}

fn normalize_l2(v: &mut [f32; DESCRIPTOR_DIM]) {
    let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 1e-12 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// Compute descriptors for many keypoints in parallel, dropping keypoints
/// whose windows leave the image. Returns surviving `(keypoint, descriptor)`
/// pairs in input order.
pub fn compute_descriptors(
    pyr: &Pyramid,
    keypoints: &[Keypoint],
) -> Vec<(Keypoint, [f32; DESCRIPTOR_DIM])> {
    keypoints
        .par_iter()
        .filter_map(|kp| {
            let level = (kp.interval.round() as usize).clamp(0, pyr.intervals + 2);
            let img = &pyr.octaves[kp.octave].gaussians[level];
            let oct_sigma = kp.octave_sigma(pyr.sigma0, pyr.intervals);
            compute_descriptor(img, kp, oct_sigma).map(|d| (*kp, d))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect_keypoints, DetectParams};
    use crate::orientation::assign_orientations;
    use texid_image::TextureGenerator;

    fn extract_all(seed: u64) -> Vec<(Keypoint, [f32; DESCRIPTOR_DIM])> {
        let im = TextureGenerator::with_size(128).generate(seed);
        let pyr = Pyramid::build(&im, 3, 3, 1.6, 0.5);
        let kps = detect_keypoints(&pyr, &DetectParams::default());
        let kps = assign_orientations(&pyr, kps);
        compute_descriptors(&pyr, &kps)
    }

    #[test]
    fn descriptors_are_unit_length() {
        let descs = extract_all(20);
        assert!(!descs.is_empty());
        for (_, d) in &descs {
            let n: f32 = d.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "norm {n}");
        }
    }

    #[test]
    fn descriptors_are_clamped_nonnegative() {
        let descs = extract_all(21);
        for (_, d) in &descs {
            for &v in d.iter() {
                assert!(v >= 0.0);
                // After clamping at 0.2 and renormalizing, values can rise
                // slightly above 0.2 but stay well below 0.5.
                assert!(v < 0.5, "suspicious component {v}");
            }
        }
    }

    #[test]
    fn window_leaving_image_is_rejected() {
        let im = TextureGenerator::with_size(64).generate(22);
        let pyr = Pyramid::build(&im, 1, 3, 1.6, 0.5);
        let kp = Keypoint {
            x: 2.0,
            y: 2.0,
            sigma: 1.6,
            orientation: 0.0,
            response: 1.0,
            octave: 0,
            interval: 1.0,
            oct_x: 2.0,
            oct_y: 2.0,
        };
        assert!(compute_descriptor(&pyr.octaves[0].gaussians[1], &kp, 1.6).is_none());
    }

    #[test]
    fn deterministic() {
        let a = extract_all(23);
        let b = extract_all(23);
        assert_eq!(a.len(), b.len());
        for ((_, da), (_, db)) in a.iter().zip(&b) {
            assert_eq!(da, db);
        }
    }

    #[test]
    fn same_point_same_descriptor_under_no_change() {
        // Descriptor of identical images must be bitwise equal.
        let im = TextureGenerator::with_size(96).generate(24);
        let pyr1 = Pyramid::build(&im, 2, 3, 1.6, 0.5);
        let pyr2 = Pyramid::build(&im.clone(), 2, 3, 1.6, 0.5);
        let kps = assign_orientations(&pyr1, detect_keypoints(&pyr1, &DetectParams::default()));
        let d1 = compute_descriptors(&pyr1, &kps);
        let d2 = compute_descriptors(&pyr2, &kps);
        assert_eq!(d1.len(), d2.len());
        for ((_, a), (_, b)) in d1.iter().zip(&d2) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rotation_invariance_of_descriptor_space() {
        // Rotating an image should leave descriptor *distributions* similar:
        // for most keypoints in the rotated image there exists a close
        // descriptor in the original. This is the property 2-NN matching
        // relies on; exactness is not required.
        use texid_image::CaptureCondition;
        let im = TextureGenerator::with_size(128).generate(25);
        let rot = CaptureCondition { rotation_deg: 20.0, ..CaptureCondition::identity() }
            .apply(&im, 0);

        let extract = |im: &texid_image::GrayImage| {
            let pyr = Pyramid::build_upscaled(im, 3, 3, 1.6, 0.5);
            let kps = assign_orientations(&pyr, detect_keypoints(&pyr, &DetectParams::default()));
            compute_descriptors(&pyr, &kps)
        };
        let da = extract(&im);
        let db = extract(&rot);
        assert!(da.len() > 50 && db.len() > 50);

        // Count rotated descriptors whose nearest original descriptor is
        // close (L2 < 0.55, i.e. strongly correlated unit vectors).
        let close = db
            .iter()
            .take(150)
            .filter(|(_, q)| {
                da.iter().any(|(_, r)| {
                    let d2: f32 = r.iter().zip(q.iter()).map(|(a, b)| (a - b).powi(2)).sum();
                    d2.sqrt() < 0.55
                })
            })
            .count();
        let frac = close as f32 / db.len().min(150) as f32;
        assert!(frac > 0.3, "only {frac:.2} of rotated descriptors found a close match");
    }
}
